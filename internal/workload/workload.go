// Package workload is the repo's measuring stick: a YCSB-style
// open-loop workload driver over the directory API (core.Suite or
// shard.Router), with coordinated-omission-safe latency capture and
// machine-checkable SLO verdicts.
//
// # Open loop, and why
//
// A closed-loop driver issues the next operation only after the previous
// one returns, so a slow operation silently delays the arrival of every
// operation behind it — the load generator conspires with the system
// under test to hide its worst moments (coordinated omission). This
// driver is open-loop: arrivals follow a fixed schedule (one every
// 1/Rate seconds), queue in a bounded buffer when the executors fall
// behind, and every latency is measured from the operation's *intended*
// start time, so queueing delay caused by the system's own slowness
// counts against it. When even the queue overflows, arrivals are shed
// and counted — backpressure is reported, never hidden.
//
// # Sessions
//
// The read-heavy mix can route lookups through client sessions
// (session.go): read-your-writes version floors plus lease-based local
// reads at a sticky quorum member, turning an R-message quorum read into
// one message on the fast path. Run reports local-read hit/fallback
// counts so the read-path win is visible next to its latency cost.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repdir/internal/core"
	"repdir/internal/obs"
	"repdir/internal/transport"
	"repdir/internal/version"
)

// Directory is the slice of the directory API the driver exercises.
// *core.Suite and *shard.Router both implement it.
type Directory interface {
	Lookup(ctx context.Context, key string) (string, bool, error)
	Insert(ctx context.Context, key, value string) error
	Update(ctx context.Context, key, value string) error
	Scan(ctx context.Context, after string, limit int) ([]core.KV, error)
}

// VersionedDirectory adds the session primitives: version-returning
// writes/reads and single-member local reads. *core.Suite and
// *shard.Router both implement it (local reads additionally need
// core.WithLocalReads on the suite(s)).
type VersionedDirectory interface {
	Directory
	LookupV(ctx context.Context, key string) (string, bool, version.V, error)
	UpdateV(ctx context.Context, key, value string) (version.V, error)
	InsertV(ctx context.Context, key, value string) (version.V, error)
	LocalLookup(ctx context.Context, key string) (string, bool, version.V, error)
}

// Mix is an operation mix: relative weights, not percentages (they are
// normalized). Scan weight drives ScanLimit-entry range scans.
type Mix struct {
	Name   string
	Lookup int
	Update int
	Insert int
	Scan   int
}

// The standard mixes, YCSB-flavored: C-like read-heavy, A-like
// update-heavy, E-like scan-heavy.
var (
	ReadHeavy   = Mix{Name: "read-heavy", Lookup: 95, Update: 5}
	UpdateHeavy = Mix{Name: "update-heavy", Lookup: 50, Update: 50}
	ScanHeavy   = Mix{Name: "scan-heavy", Lookup: 20, Update: 5, Scan: 75}
)

func (m Mix) total() int { return m.Lookup + m.Update + m.Insert + m.Scan }

// SLO is a latency objective on response time (intended-start to
// completion). Zero fields are unchecked.
type SLO struct {
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
	// MaxShedFraction bounds Shed/Offered (default: any shedding fails
	// the verdict when an SLO is set, because shed arrivals are load the
	// system refused, not latency it served).
	MaxShedFraction float64
}

// Config parameterizes one open-loop run.
type Config struct {
	// Mix is the operation mix (default ReadHeavy).
	Mix Mix
	// Keys is the key-universe size; keys are dense ["w00000000",
	// "w00000001", ...) and must be preloaded (Preload). Zipfian mixes
	// draw ranks over this universe.
	Keys int
	// Rate is the open-loop arrival rate in operations per second
	// (default 1000).
	Rate float64
	// Duration bounds the arrival schedule (default 2s); queued
	// operations still complete (and are measured) after it elapses.
	Duration time.Duration
	// Workers is the executor pool size (default 32). The pool bounds
	// concurrency, the queue bounds memory; together they are the
	// client's admission control.
	Workers int
	// QueueDepth bounds the arrival queue (default 4*Workers). Arrivals
	// finding it full are shed and counted, not blocked: blocking the
	// arrival clock would re-introduce coordinated omission.
	QueueDepth int
	// ZipfS > 1 draws keys from a Zipf(s) rank distribution over the
	// universe (hot head, long tail); otherwise uniform.
	ZipfS float64
	// HotFraction, when > 0, redirects that fraction of update
	// operations onto a tiny write-hot keyset of HotKeys keys (the first
	// HotKeys keys of the universe), layered on top of the base
	// distribution. Concentrated writers contend for the same write
	// locks, so the mix exercises wait-die lock pressure, not just
	// queueing.
	HotFraction float64
	// HotKeys sizes the write-hot keyset (default 16 when HotFraction
	// is set).
	HotKeys int
	// OpTimeout, when > 0, runs every operation under its own context
	// deadline. Over the TCP transport the remaining budget propagates
	// in the request header, so servers can fast-reject work this
	// driver will no longer wait for.
	OpTimeout time.Duration
	// ScanLimit is the entry budget per scan (default 50).
	ScanLimit int
	// Seed fixes the operation/key sequence. Zero is a valid,
	// replayable seed (it is NOT coerced — see the zero-seed bugfix in
	// internal/sim).
	Seed int64
	// SLO, when any field is set, produces a pass/fail verdict.
	SLO SLO
	// Sessions, when > 0, routes lookups through that many client
	// sessions with read-your-writes floors and lease-based local reads
	// (requires a VersionedDirectory target with local members).
	Sessions int
	// LeaseTTL bounds how long a session trusts its local member
	// between quorum refreshes (default 500ms).
	LeaseTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.Mix.total() == 0 {
		c.Mix = ReadHeavy
	}
	if c.Keys <= 0 {
		c.Keys = 1000
	}
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 50
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 500 * time.Millisecond
	}
	if c.HotFraction > 0 && c.HotKeys <= 0 {
		c.HotKeys = 16
	}
	if c.HotKeys > c.Keys {
		c.HotKeys = c.Keys
	}
	return c
}

// Key returns the i'th key of the dense universe.
func Key(i int) string { return fmt.Sprintf("w%08d", i) }

// Result is one run's accounting and latency capture.
type Result struct {
	Config Config
	// Offered counts scheduled arrivals; Shed the arrivals dropped at a
	// full queue; Completed the operations that finished (successfully
	// or not); Errors the operations that returned an error.
	Offered, Shed, Completed, Errors uint64
	// Elapsed spans first intended arrival to last completion.
	Elapsed time.Duration
	// Throughput is completed operations per second of Elapsed.
	Throughput float64
	// Response is latency from intended start (coordinated-omission
	// safe); Service from actual execution start — the number a
	// closed-loop driver would have reported. The gap between their
	// tails is the omission delta.
	Response obs.HistogramSnapshot
	Service  obs.HistogramSnapshot
	// PerOp breaks response time down by operation label.
	PerOp map[string]obs.HistogramSnapshot
	// LocalReads / LocalFallbacks count session lookups served by the
	// one-message local path vs falling back to a quorum read (floor
	// violation, lease expiry, or local-read error).
	LocalReads, LocalFallbacks uint64
	// ErrorKinds splits Errors by cause, so an overload run can account
	// for every refused operation: "overloaded" (server shed),
	// "expired" (deadline refused at the server), "budget" (client
	// retry budget drained), "unavailable", "deadline" (client context
	// elapsed), "other".
	ErrorKinds map[string]uint64
	// Verdict is the SLO evaluation (Checked false when no SLO set).
	Verdict Verdict
}

// Verdict is the SLO evaluation of a run.
type Verdict struct {
	Checked        bool
	P50, P99, P999 time.Duration
	ShedFraction   float64
	Pass           bool
	// Failures lists which objectives missed, for human logs.
	Failures []string
}

// evaluate builds the verdict from the response capture.
func (c Config) evaluate(res *Result) {
	v := &res.Verdict
	v.P50 = res.Response.Quantile(0.50)
	v.P99 = res.Response.Quantile(0.99)
	v.P999 = res.Response.Quantile(0.999)
	if res.Offered > 0 {
		v.ShedFraction = float64(res.Shed) / float64(res.Offered)
	}
	slo := c.SLO
	if slo.P50 == 0 && slo.P99 == 0 && slo.P999 == 0 {
		return
	}
	v.Checked = true
	v.Pass = true
	check := func(name string, got, want time.Duration) {
		if want > 0 && got > want {
			v.Pass = false
			v.Failures = append(v.Failures, fmt.Sprintf("%s %v > %v", name, got, want))
		}
	}
	check("p50", v.P50, slo.P50)
	check("p99", v.P99, slo.P99)
	check("p999", v.P999, slo.P999)
	if v.ShedFraction > slo.MaxShedFraction {
		v.Pass = false
		v.Failures = append(v.Failures,
			fmt.Sprintf("shed %.2f%% > %.2f%%", 100*v.ShedFraction, 100*slo.MaxShedFraction))
	}
}

// op is one scheduled operation: what to do, on which key, and when it
// was meant to start.
type op struct {
	kind     opKind
	key      string
	value    string
	intended time.Time
	session  int
}

type opKind uint8

const (
	opLookup opKind = iota
	opUpdate
	opInsert
	opScan
)

var opLabels = [...]string{"lookup", "update", "insert", "scan"}

// Error-kind buckets for Result.ErrorKinds. Overload accounting needs
// every refused operation attributed: a shed, an expiry, and a drained
// budget are three different stories about the same slow server.
const (
	errOverloaded = iota
	errExpired
	errBudget
	errUnavailable
	errDeadline
	errOther
	numErrKinds
)

var errKindLabels = [numErrKinds]string{
	"overloaded", "expired", "budget", "unavailable", "deadline", "other",
}

func errKind(err error) int {
	switch {
	case errors.Is(err, core.ErrBudgetExhausted):
		// Budget wraps the overload-class root cause; the budget verdict
		// is the useful one (the client stopped, not the server).
		return errBudget
	case errors.Is(err, transport.ErrOverloaded):
		return errOverloaded
	case errors.Is(err, transport.ErrExpired):
		return errExpired
	case errors.Is(err, transport.ErrUnavailable):
		return errUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return errDeadline
	default:
		return errOther
	}
}

// Preload installs the dense key universe through dir, batching inserts
// into transactions of batch keys (amortizing two-phase commit) and
// loading parallel disjoint stripes. Suite and Router targets both work;
// pass the concrete type's RunInTxn via the txnRunner.
func Preload(ctx context.Context, dir Directory, keys, batch, parallel int, runner TxnRunner) error {
	if keys <= 0 {
		return errors.New("workload: no keys to preload")
	}
	if batch <= 0 {
		batch = 128
	}
	if parallel <= 0 {
		parallel = 8
	}
	var wg sync.WaitGroup
	errCh := make(chan error, parallel)
	per := (keys + parallel - 1) / parallel
	for w := 0; w < parallel; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > keys {
			hi = keys
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for start := lo; start < hi; start += batch {
				end := start + batch
				if end > hi {
					end = hi
				}
				var err error
				if runner != nil {
					err = runner(ctx, func(ins Inserter) error {
						for i := start; i < end; i++ {
							if err := ins.Insert(ctx, Key(i), "v0"); err != nil {
								return err
							}
						}
						return nil
					})
				} else {
					for i := start; i < end; i++ {
						if err = dir.Insert(ctx, Key(i), "v0"); err != nil {
							break
						}
					}
				}
				if err != nil {
					errCh <- fmt.Errorf("workload: preload [%d,%d): %w", start, end, err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// Inserter is the slice of the transactional API Preload batches
// through.
type Inserter interface {
	Insert(ctx context.Context, key, value string) error
}

// TxnRunner adapts a target's RunInTxn to Preload. For a *core.Suite s:
//
//	func(ctx context.Context, fn func(workload.Inserter) error) error {
//		return s.RunInTxn(ctx, func(tx *core.Tx) error { return fn(txInserter{ctx, tx}) })
//	}
//
// SuiteRunner and RouterRunner build these for the two concrete targets.
type TxnRunner func(ctx context.Context, fn func(Inserter) error) error

// Run drives one open-loop run against dir. The universe must already
// be preloaded. Sessions require dir to implement VersionedDirectory.
func Run(ctx context.Context, dir Directory, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Config: cfg}
	if cfg.Mix.total() <= 0 {
		return res, errors.New("workload: empty mix")
	}

	var sessions []*Session
	if cfg.Sessions > 0 {
		vdir, ok := dir.(VersionedDirectory)
		if !ok {
			return res, errors.New("workload: sessions need a versioned directory target")
		}
		sessions = make([]*Session, cfg.Sessions)
		for i := range sessions {
			sessions[i] = NewSession(vdir, cfg.LeaseTTL)
		}
	}

	rec := NewRecorder()
	queue := make(chan op, cfg.QueueDepth)
	var offered, shed, completed, errs atomic.Uint64
	var errKinds [numErrKinds]atomic.Uint64

	// Executors: drain the queue, run the operation, record latency
	// from the intended start.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range queue {
				execStart := time.Now()
				opCtx, cancel := ctx, context.CancelFunc(nil)
				if cfg.OpTimeout > 0 {
					opCtx, cancel = context.WithTimeout(ctx, cfg.OpTimeout)
				}
				err := execute(opCtx, dir, sessions, cfg, o)
				if cancel != nil {
					cancel()
				}
				rec.Record(opLabels[o.kind], o.intended, execStart, time.Now())
				completed.Add(1)
				if err != nil {
					errs.Add(1)
					errKinds[errKind(err)].Add(1)
				}
			}
		}()
	}

	// Arrival clock: operations are generated in schedule order from a
	// single deterministic stream and offered at their intended times.
	gen := newOpGen(cfg)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for n := 0; ; n++ {
		intended := start.Add(time.Duration(n) * interval)
		if intended.After(deadline) {
			break
		}
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		o := gen.next()
		o.intended = intended
		offered.Add(1)
		select {
		case queue <- o:
		default:
			// Queue full: shed the arrival. The clock keeps ticking —
			// that is the whole point of the open loop.
			shed.Add(1)
		}
	}
	close(queue)
	wg.Wait()
	res.Elapsed = time.Since(start)

	res.Offered = offered.Load()
	res.Shed = shed.Load()
	res.Completed = completed.Load()
	res.Errors = errs.Load()
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	res.Response = rec.Response()
	res.Service = rec.Service()
	res.PerOp = rec.PerOp()
	for _, s := range sessions {
		lr, lf := s.Stats()
		res.LocalReads += lr
		res.LocalFallbacks += lf
	}
	for i := range errKinds {
		if n := errKinds[i].Load(); n > 0 {
			if res.ErrorKinds == nil {
				res.ErrorKinds = make(map[string]uint64, numErrKinds)
			}
			res.ErrorKinds[errKindLabels[i]] = n
		}
	}
	cfg.evaluate(&res)
	return res, nil
}

// execute runs one operation. Semantic errors that the workload itself
// provokes (inserting an existing key) are not failures.
func execute(ctx context.Context, dir Directory, sessions []*Session, cfg Config, o op) error {
	switch o.kind {
	case opLookup:
		if len(sessions) > 0 {
			s := sessions[o.session%len(sessions)]
			_, _, err := s.Lookup(ctx, o.key)
			return err
		}
		_, _, err := dir.Lookup(ctx, o.key)
		return err
	case opUpdate:
		if len(sessions) > 0 {
			s := sessions[o.session%len(sessions)]
			return s.Update(ctx, o.key, o.value)
		}
		return dir.Update(ctx, o.key, o.value)
	case opInsert:
		err := dir.Insert(ctx, o.key, o.value)
		if errors.Is(err, core.ErrKeyExists) {
			return nil
		}
		return err
	case opScan:
		_, err := dir.Scan(ctx, o.key, cfg.ScanLimit)
		return err
	}
	return fmt.Errorf("workload: unknown op %d", o.kind)
}

// opGen deterministically generates the operation stream: one rng, one
// zipf source, round-robin session assignment.
type opGen struct {
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	seq    uint64
	insert int // next fresh insert suffix
}

func newOpGen(cfg Config) *opGen {
	g := &opGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), insert: cfg.Keys}
	if cfg.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	return g
}

// pickKey draws a key index from the configured distribution.
func (g *opGen) pickKey() string {
	if g.zipf != nil {
		return Key(int(g.zipf.Uint64()))
	}
	return Key(g.rng.Intn(g.cfg.Keys))
}

// pickWriteKey layers the write-hot keyset over the base distribution:
// with probability HotFraction the update lands on one of HotKeys keys,
// concentrating writers onto the same locks.
func (g *opGen) pickWriteKey() string {
	if g.cfg.HotFraction > 0 && g.rng.Float64() < g.cfg.HotFraction {
		return Key(g.rng.Intn(g.cfg.HotKeys))
	}
	return g.pickKey()
}

func (g *opGen) next() op {
	m := g.cfg.Mix
	r := g.rng.Intn(m.total())
	g.seq++
	o := op{session: int(g.seq)}
	switch {
	case r < m.Lookup:
		o.kind, o.key = opLookup, g.pickKey()
	case r < m.Lookup+m.Update:
		o.kind, o.key = opUpdate, g.pickWriteKey()
		o.value = fmt.Sprintf("u%d", g.seq)
	case r < m.Lookup+m.Update+m.Insert:
		o.kind = opInsert
		o.key = Key(g.insert)
		g.insert++
		o.value = "v0"
	default:
		o.kind, o.key = opScan, g.pickKey()
	}
	return o
}
