package workload

import (
	"context"

	"repdir/internal/core"
	"repdir/internal/shard"
)

// SuiteRunner adapts a suite's transactional API to Preload batching.
func SuiteRunner(s *core.Suite) TxnRunner {
	return func(ctx context.Context, fn func(Inserter) error) error {
		return s.RunInTxn(ctx, func(tx *core.Tx) error { return fn(tx) })
	}
}

// RouterRunner adapts a router's cross-shard transactional API to
// Preload batching. Batches of contiguous keys mostly land on one
// shard, so the cross-shard 2PC usually degenerates to a single suite's.
func RouterRunner(r *shard.Router) TxnRunner {
	return func(ctx context.Context, fn func(Inserter) error) error {
		return r.RunInTxn(ctx, func(x *shard.Txn) error { return fn(x) })
	}
}
