package workload

import (
	"time"

	"repdir/internal/obs"
)

// Recorder is the coordinated-omission-safe latency recorder: callers
// hand it the operation's *intended* start time (its slot on the arrival
// schedule), its actual execution start, and its completion. Response
// time — intended start to completion — charges the system for every
// microsecond an operation spent queued behind the system's own
// slowness; service time — execution start to completion — is what a
// closed-loop driver would have measured. Both feed internal/obs
// histograms, so snapshots merge and quantiles (overflow-exact, see
// obs.HistogramSnapshot.Max) come for free. Safe for concurrent use.
type Recorder struct {
	response obs.Histogram
	service  obs.Histogram
	perOp    *obs.HistogramVec
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{perOp: obs.NewHistogramVec()}
}

// Record captures one operation. intended may equal execStart (a
// closed-loop caller that genuinely had no schedule), in which case
// response and service coincide.
func (r *Recorder) Record(op string, intended, execStart, done time.Time) {
	resp := done.Sub(intended)
	r.response.Observe(resp)
	r.service.Observe(done.Sub(execStart))
	if op != "" {
		r.perOp.With(op).Observe(resp)
	}
}

// Response snapshots the response-time histogram (from intended start).
func (r *Recorder) Response() obs.HistogramSnapshot { return r.response.Snapshot() }

// Service snapshots the service-time histogram (from execution start).
func (r *Recorder) Service() obs.HistogramSnapshot { return r.service.Snapshot() }

// PerOp snapshots the per-operation response-time histograms.
func (r *Recorder) PerOp() map[string]obs.HistogramSnapshot { return r.perOp.Snapshot() }

// OmissionDelta is the headline coordinated-omission number: how much
// of the response-time tail the service-time view hides, at quantile q.
func (r *Recorder) OmissionDelta(q float64) time.Duration {
	return r.Response().Quantile(q) - r.Service().Quantile(q)
}
