package workload

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repdir/internal/version"
)

// Session is one client's view of the directory with session guarantees
// layered over the suite's single-copy semantics:
//
//   - Read-your-writes: every write through the session records the
//     version it installed as a per-key floor; a read may never return
//     an older version for that key.
//   - Monotonic reads: quorum reads advance the floor too, so a later
//     read can never travel back in time past an earlier one.
//
// On the fast path, reads go to the target's designated local member
// (core.WithLocalReads) — one message instead of a read quorum. The
// local reply is trusted only while two checks hold: the session's lease
// on the member is unexpired, and the reply's version meets the key's
// floor. Either failing falls back to a quorum read (which also renews
// the lease — a successful quorum round is proof the configuration
// still stands). Under a sticky write-quorum policy the local member
// sees every write, so fallbacks measure genuine staleness, not policy
// noise.
//
// The lease here is a client-side staleness bound, not a server-granted
// invalidation lease: a local read can return data at most LeaseTTL
// staler than the last quorum-confirmed view for keys written by other
// clients through quorums excluding the member. The floor makes the
// session's own writes immune to even that window.
type Session struct {
	dir      VersionedDirectory
	leaseTTL time.Duration

	mu     sync.Mutex
	floors map[string]version.V
	lease  time.Time // lease valid until this instant

	localReads     atomic.Uint64
	localFallbacks atomic.Uint64
}

// NewSession opens a session over dir with the given lease TTL. The
// lease starts expired; the first read takes the quorum path and renews
// it.
func NewSession(dir VersionedDirectory, leaseTTL time.Duration) *Session {
	return &Session{
		dir:      dir,
		leaseTTL: leaseTTL,
		floors:   make(map[string]version.V),
	}
}

// floor returns the session's version floor for key (Lowest if none).
func (s *Session) floor(key string) version.V {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floors[key]
}

// raiseFloor records that the session observed or installed ver for key.
func (s *Session) raiseFloor(key string, ver version.V) {
	s.mu.Lock()
	if ver > s.floors[key] {
		s.floors[key] = ver
	}
	s.mu.Unlock()
}

// renewLease extends the lease after a successful quorum round.
func (s *Session) renewLease() {
	s.mu.Lock()
	s.lease = time.Now().Add(s.leaseTTL)
	s.mu.Unlock()
}

// leaseValid reports whether the local member may serve this read.
func (s *Session) leaseValid() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Now().Before(s.lease)
}

// Stats returns how many lookups were served locally vs fell back to a
// quorum read.
func (s *Session) Stats() (localReads, localFallbacks uint64) {
	return s.localReads.Load(), s.localFallbacks.Load()
}

// Lookup reads key under the session guarantees: local member first
// while the lease holds and the floor is met, quorum read otherwise.
func (s *Session) Lookup(ctx context.Context, key string) (string, bool, error) {
	if s.leaseValid() {
		value, found, ver, err := s.dir.LocalLookup(ctx, key)
		if err == nil && ver >= s.floor(key) {
			s.localReads.Add(1)
			s.raiseFloor(key, ver)
			return value, found, nil
		}
		// Stale local copy, or the member is unreachable/fenced: pay
		// the quorum read. Deliberately not an error path — staleness
		// is an expected, counted outcome.
		s.localFallbacks.Add(1)
	}
	value, found, ver, err := s.dir.LookupV(ctx, key)
	if err != nil {
		return "", false, err
	}
	s.raiseFloor(key, ver)
	s.renewLease()
	return value, found, nil
}

// Update writes key through a write quorum and raises the floor to the
// installed version, making the write visible to every later session
// read.
func (s *Session) Update(ctx context.Context, key, value string) error {
	ver, err := s.dir.UpdateV(ctx, key, value)
	if err != nil {
		return err
	}
	s.raiseFloor(key, ver)
	s.renewLease()
	return nil
}

// Insert creates key and raises the floor to the installed version.
func (s *Session) Insert(ctx context.Context, key, value string) error {
	ver, err := s.dir.InsertV(ctx, key, value)
	if err != nil {
		return err
	}
	s.raiseFloor(key, ver)
	s.renewLease()
	return nil
}
