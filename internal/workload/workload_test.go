package workload

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repdir/internal/core"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
	"repdir/internal/version"
)

// newSuite builds a 3-2-2 sticky suite with rep0 as local read member.
func newSuite(t *testing.T, names ...string) *core.Suite {
	t.Helper()
	if len(names) == 0 {
		names = []string{"rep0", "rep1", "rep2"}
	}
	dirs := make([]rep.Directory, len(names))
	for i, n := range names {
		dirs[i] = transport.NewLocal(rep.New(n))
	}
	cfg := quorum.NewUniform(dirs, 2, 2)
	s, err := core.NewSuite(cfg,
		core.WithSelector(quorum.NewStickySelector(cfg)),
		core.WithLocalReads(names[0]),
		core.WithParallelQuorum(true))
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	return s
}

// TestPreloadAndRun drives a short open-loop mixed run end to end
// against a real suite and checks the accounting identities: every
// offered arrival is either completed or shed, the latency captures
// cover every completed operation, and response >= service at every
// recorded point in aggregate.
func TestPreloadAndRun(t *testing.T) {
	ctx := context.Background()
	s := newSuite(t)
	const keys = 200
	if err := Preload(ctx, s, keys, 32, 4, SuiteRunner(s)); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	if _, found, err := s.Lookup(ctx, Key(0)); err != nil || !found {
		t.Fatalf("preloaded key missing: %v %v", found, err)
	}
	if _, found, err := s.Lookup(ctx, Key(keys-1)); err != nil || !found {
		t.Fatalf("last preloaded key missing: %v %v", found, err)
	}

	res, err := Run(ctx, s, Config{
		Mix:      Mix{Name: "mixed", Lookup: 60, Update: 20, Insert: 10, Scan: 10},
		Keys:     keys,
		Rate:     2000,
		Duration: 300 * time.Millisecond,
		Workers:  8,
		Seed:     7,
		// Latency-only objective: under -race everything runs ~10x
		// slower and some shedding is expected, so allow it here — the
		// backpressure test asserts shed gating on its own.
		SLO: SLO{P999: time.Minute, MaxShedFraction: 1},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if res.Offered != res.Completed+res.Shed {
		t.Errorf("accounting: offered %d != completed %d + shed %d",
			res.Offered, res.Completed, res.Shed)
	}
	if res.Errors != 0 {
		t.Errorf("%d operation errors", res.Errors)
	}
	if res.Response.Count != res.Completed || res.Service.Count != res.Completed {
		t.Errorf("capture counts %d/%d != completed %d",
			res.Response.Count, res.Service.Count, res.Completed)
	}
	if res.Response.Sum < res.Service.Sum {
		t.Errorf("aggregate response %v < service %v — intended-start accounting lost time",
			res.Response.Sum, res.Service.Sum)
	}
	var perOpTotal uint64
	for _, s := range res.PerOp {
		perOpTotal += s.Count
	}
	if perOpTotal != res.Completed {
		t.Errorf("per-op total %d != completed %d", perOpTotal, res.Completed)
	}
	if !res.Verdict.Checked || !res.Verdict.Pass {
		t.Errorf("verdict = %+v, want checked pass", res.Verdict)
	}
}

// TestRunDeterministicStream pins that the operation stream is a pure
// function of the seed: two generators with the same seed produce the
// same sequence, and seed zero is a valid seed distinct from seed one.
func TestRunDeterministicStream(t *testing.T) {
	cfg := Config{Keys: 100, Mix: UpdateHeavy, ZipfS: 1.2}.withDefaults()
	a, b := newOpGen(cfg), newOpGen(cfg)
	for i := 0; i < 500; i++ {
		oa, ob := a.next(), b.next()
		if oa.kind != ob.kind || oa.key != ob.key {
			t.Fatalf("op %d diverged: %v/%s vs %v/%s", i, oa.kind, oa.key, ob.kind, ob.key)
		}
	}
	zero, one := cfg, cfg
	zero.Seed, one.Seed = 0, 1
	gz, go1 := newOpGen(zero), newOpGen(one)
	same := true
	for i := 0; i < 64; i++ {
		oz, oo := gz.next(), go1.next()
		if oz.kind != oo.kind || oz.key != oo.key {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 0 and seed 1 generated identical streams — zero seed likely coerced")
	}
}

// slowDir wraps a Directory, delaying every lookup.
type slowDir struct {
	Directory
	delay time.Duration
	calls atomic.Uint64
}

func (d *slowDir) Lookup(ctx context.Context, key string) (string, bool, error) {
	d.calls.Add(1)
	time.Sleep(d.delay)
	return d.Directory.Lookup(ctx, key)
}

// TestBackpressureSheds overloads a deliberately slow target: with one
// worker, a tiny queue, and arrivals far beyond capacity, the driver
// must shed (not block the clock), the verdict must fail on shedding,
// and the response tail must dwarf the service tail (the coordinated
// omission a closed-loop driver would have hidden).
func TestBackpressureSheds(t *testing.T) {
	ctx := context.Background()
	s := newSuite(t, "sl0", "sl1", "sl2")
	const keys = 50
	if err := Preload(ctx, s, keys, 16, 2, SuiteRunner(s)); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	slow := &slowDir{Directory: s, delay: 5 * time.Millisecond}
	res, err := Run(ctx, slow, Config{
		Mix:        Mix{Name: "reads", Lookup: 1},
		Keys:       keys,
		Rate:       2000, // 10× the single worker's ~200/s capacity
		Duration:   250 * time.Millisecond,
		Workers:    1,
		QueueDepth: 4,
		Seed:       1,
		SLO:        SLO{P99: 100 * time.Second}, // latency passes; shedding must fail it
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Shed == 0 {
		t.Fatalf("overloaded run shed nothing (offered %d, completed %d)", res.Offered, res.Completed)
	}
	if res.Verdict.Pass {
		t.Errorf("verdict passed despite %.1f%% shed", 100*res.Verdict.ShedFraction)
	}
	if res.Response.Quantile(0.99) <= res.Service.Quantile(0.99) {
		t.Errorf("response p99 %v <= service p99 %v — queueing delay not charged",
			res.Response.Quantile(0.99), res.Service.Quantile(0.99))
	}
}

// stubVDir is a scripted VersionedDirectory for session-logic tests.
type stubVDir struct {
	Directory
	localVer  version.V
	localVal  string
	quorumVer version.V
	quorumVal string
	writeVer  version.V

	localCalls, quorumCalls int
}

func (d *stubVDir) LookupV(ctx context.Context, key string) (string, bool, version.V, error) {
	d.quorumCalls++
	return d.quorumVal, true, d.quorumVer, nil
}

func (d *stubVDir) LocalLookup(ctx context.Context, key string) (string, bool, version.V, error) {
	d.localCalls++
	return d.localVal, true, d.localVer, nil
}

func (d *stubVDir) UpdateV(ctx context.Context, key, value string) (version.V, error) {
	return d.writeVer, nil
}

func (d *stubVDir) InsertV(ctx context.Context, key, value string) (version.V, error) {
	return d.writeVer, nil
}

// TestSessionReadYourWrites scripts the floor check: after a write at
// version 5, a local member still at version 3 must NOT serve the read
// — the session falls back to the quorum path.
func TestSessionReadYourWrites(t *testing.T) {
	ctx := context.Background()
	d := &stubVDir{localVer: 3, localVal: "stale", quorumVer: 5, quorumVal: "fresh", writeVer: 5}
	s := NewSession(d, time.Minute)

	// Write raises the floor to 5 and grants the lease.
	if err := s.Update(ctx, "k", "fresh"); err != nil {
		t.Fatalf("Update: %v", err)
	}
	val, _, err := s.Lookup(ctx, "k")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if val != "fresh" {
		t.Fatalf("read-your-writes violated: got %q from the stale local copy", val)
	}
	if d.localCalls != 1 || d.quorumCalls != 1 {
		t.Errorf("calls local=%d quorum=%d, want the local probe then the fallback", d.localCalls, d.quorumCalls)
	}
	lr, lf := s.Stats()
	if lr != 0 || lf != 1 {
		t.Errorf("stats local=%d fallback=%d, want 0/1", lr, lf)
	}

	// Once the local copy catches up, reads stay local.
	d.localVer, d.localVal = 5, "fresh"
	if val, _, err = s.Lookup(ctx, "k"); err != nil || val != "fresh" {
		t.Fatalf("caught-up local read: %q, %v", val, err)
	}
	lr, _ = s.Stats()
	if lr != 1 {
		t.Errorf("caught-up read not served locally (local=%d)", lr)
	}

	// Monotonic reads: the quorum read advanced the floor to 5; a local
	// copy sliding back below it (impossible for one member, but models
	// a reconfigured target) must not serve.
	d.localVer = 4
	if _, _, err := s.Lookup(ctx, "k"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if _, lf = s.Stats(); lf != 2 {
		t.Errorf("regressed local copy served (fallbacks=%d, want 2)", lf)
	}
}

// TestSessionLeaseExpiry pins the lease gate: with an expired lease the
// session must not touch the local member at all, and a successful
// quorum read renews the lease.
func TestSessionLeaseExpiry(t *testing.T) {
	ctx := context.Background()
	d := &stubVDir{localVer: 9, localVal: "v", quorumVer: 9, quorumVal: "v", writeVer: 9}
	s := NewSession(d, 50*time.Millisecond)

	// The lease starts expired: first read is a quorum read.
	if _, _, err := s.Lookup(ctx, "k"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if d.localCalls != 0 || d.quorumCalls != 1 {
		t.Fatalf("pre-lease calls local=%d quorum=%d", d.localCalls, d.quorumCalls)
	}
	// The quorum read granted the lease: next read is local.
	if _, _, err := s.Lookup(ctx, "k"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if d.localCalls != 1 {
		t.Fatalf("leased read not local (local=%d)", d.localCalls)
	}
	// Let the lease lapse: back to the quorum path.
	time.Sleep(60 * time.Millisecond)
	if _, _, err := s.Lookup(ctx, "k"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if d.localCalls != 1 || d.quorumCalls != 2 {
		t.Errorf("post-expiry calls local=%d quorum=%d, want 1/2", d.localCalls, d.quorumCalls)
	}
}

// TestSessionsEndToEnd runs the read-heavy mix through sessions against
// a real sticky suite: local reads must dominate (the read-path win the
// harness exists to measure) and nothing may error.
func TestSessionsEndToEnd(t *testing.T) {
	ctx := context.Background()
	s := newSuite(t, "se0", "se1", "se2")
	const keys = 100
	if err := Preload(ctx, s, keys, 32, 4, SuiteRunner(s)); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	res, err := Run(ctx, s, Config{
		Mix:      ReadHeavy,
		Keys:     keys,
		Rate:     2000,
		Duration: 250 * time.Millisecond,
		Workers:  8,
		Sessions: 4,
		LeaseTTL: time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors", res.Errors)
	}
	if res.LocalReads == 0 {
		t.Fatal("no lookups served by the local path")
	}
	if res.LocalReads < res.LocalFallbacks {
		t.Errorf("local path lost to fallbacks (%d local, %d fallback) under sticky quorums",
			res.LocalReads, res.LocalFallbacks)
	}
}

// TestRecorder pins the response/service split and the omission delta.
func TestRecorder(t *testing.T) {
	r := NewRecorder()
	base := time.Unix(0, 0)
	// Intended at t=0, started at t=40ms (queued), done at t=50ms.
	r.Record("lookup", base, base.Add(40*time.Millisecond), base.Add(50*time.Millisecond))
	resp, svc := r.Response(), r.Service()
	if resp.Max != 50*time.Millisecond {
		t.Errorf("response max = %v, want 50ms", resp.Max)
	}
	if svc.Max != 10*time.Millisecond {
		t.Errorf("service max = %v, want 10ms", svc.Max)
	}
	if d := r.OmissionDelta(1); d <= 0 {
		t.Errorf("omission delta = %v, want positive", d)
	}
	if per := r.PerOp(); per["lookup"].Count != 1 {
		t.Errorf("per-op capture missing: %+v", per)
	}
}

// TestHotKeyMix pins the write-hot overlay: with HotFraction set, about
// that share of updates lands on the tiny hot keyset while lookups keep
// the base distribution (over a universe large enough that hot hits by
// chance are negligible).
func TestHotKeyMix(t *testing.T) {
	cfg := Config{
		Keys:        10_000,
		Mix:         UpdateHeavy,
		HotFraction: 0.5,
		HotKeys:     4,
		Seed:        11,
	}.withDefaults()
	g := newOpGen(cfg)
	hotSet := make(map[string]bool, cfg.HotKeys)
	for i := 0; i < cfg.HotKeys; i++ {
		hotSet[Key(i)] = true
	}
	var updates, hotUpdates, lookups, hotLookups int
	for i := 0; i < 4000; i++ {
		o := g.next()
		switch o.kind {
		case opUpdate:
			updates++
			if hotSet[o.key] {
				hotUpdates++
			}
		case opLookup:
			lookups++
			if hotSet[o.key] {
				hotLookups++
			}
		}
	}
	frac := float64(hotUpdates) / float64(updates)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("hot update fraction = %.2f, want ~0.5", frac)
	}
	// 4 hot keys out of 10k: uniform lookups land there ~0.04% of the
	// time. Anything above 2% means the overlay leaked into reads.
	if float64(hotLookups)/float64(lookups) > 0.02 {
		t.Errorf("lookups biased to hot keys (%d of %d) — overlay must be write-only", hotLookups, lookups)
	}

	// The overlay stays deterministic under a fixed seed.
	a, b := newOpGen(cfg), newOpGen(cfg)
	for i := 0; i < 500; i++ {
		oa, ob := a.next(), b.next()
		if oa.kind != ob.kind || oa.key != ob.key {
			t.Fatalf("op %d diverged with hot overlay", i)
		}
	}
}

func TestErrKindClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{transport.ErrOverloaded, "overloaded"},
		{transport.ErrExpired, "expired"},
		{transport.ErrUnavailable, "unavailable"},
		{context.DeadlineExceeded, "deadline"},
		{core.ErrKeyExists, "other"},
		// The budget wraps its overload-class root cause; the budget
		// verdict must win over the wrapped kind.
		{fmt.Errorf("%w: %w", core.ErrBudgetExhausted, transport.ErrOverloaded), "budget"},
	}
	for _, c := range cases {
		if got := errKindLabels[errKind(c.err)]; got != c.want {
			t.Errorf("errKind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// failDir fails every lookup with a fixed error.
type failDir struct {
	Directory
	err error
}

func (d *failDir) Lookup(ctx context.Context, key string) (string, bool, error) {
	return "", false, d.err
}

// TestRunErrorKindsAccounting drives a lookup-only run against a target
// that sheds everything: every error must land in the "overloaded"
// bucket and the buckets must sum to Errors.
func TestRunErrorKindsAccounting(t *testing.T) {
	ctx := context.Background()
	s := newSuite(t, "ek0", "ek1", "ek2")
	if err := Preload(ctx, s, 20, 16, 2, SuiteRunner(s)); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	res, err := Run(ctx, &failDir{Directory: s, err: transport.ErrOverloaded}, Config{
		Mix:      Mix{Name: "reads", Lookup: 1},
		Keys:     20,
		Rate:     1000,
		Duration: 100 * time.Millisecond,
		Workers:  4,
		Seed:     5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors == 0 {
		t.Fatal("no errors recorded against an always-shedding target")
	}
	if got := res.ErrorKinds["overloaded"]; got != res.Errors {
		t.Errorf("ErrorKinds[overloaded] = %d, want all %d errors", got, res.Errors)
	}
	var sum uint64
	for _, n := range res.ErrorKinds {
		sum += n
	}
	if sum != res.Errors {
		t.Errorf("ErrorKinds sum %d != Errors %d", sum, res.Errors)
	}
}

// stallDir blocks lookups until the per-op context expires — the
// OpTimeout must bound the operation and classify it as a deadline miss.
type stallDir struct {
	Directory
}

func (d *stallDir) Lookup(ctx context.Context, key string) (string, bool, error) {
	<-ctx.Done()
	return "", false, ctx.Err()
}

func TestRunOpTimeout(t *testing.T) {
	ctx := context.Background()
	s := newSuite(t, "ot0", "ot1", "ot2")
	if err := Preload(ctx, s, 20, 16, 2, SuiteRunner(s)); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	start := time.Now()
	res, err := Run(ctx, &stallDir{Directory: s}, Config{
		Mix:       Mix{Name: "reads", Lookup: 1},
		Keys:      20,
		Rate:      200,
		Duration:  100 * time.Millisecond,
		Workers:   8,
		OpTimeout: 20 * time.Millisecond,
		Seed:      5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Without OpTimeout this run would hang forever on the first lookup.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run took %v — OpTimeout did not bound stalled operations", elapsed)
	}
	if res.Errors == 0 || res.ErrorKinds["deadline"] != res.Errors {
		t.Errorf("deadline misses = %d of %d errors, want all", res.ErrorKinds["deadline"], res.Errors)
	}
}
