// Package transport connects directory suites to directory
// representatives.
//
// The paper writes remote operations as "Send(<procedure invocation>)
// to(<object instance>)" (section 3). This package supplies three
// implementations of that primitive, all satisfying rep.Directory:
//
//   - Local: a direct in-process hop with optional fault injection
//     (crashed replica, added latency), used by simulations and tests.
//   - Client/Server: a TCP transport carrying gob-encoded requests, used
//     by the cmd/repdir-server and cmd/repdir-cli executables.
//
// Errors that the replication algorithm reacts to (wait-die aborts,
// unavailable replicas, missing coalesce bounds) are mapped to wire codes
// so errors.Is keeps working across the network.
package transport

import (
	"errors"
	"fmt"

	"repdir/internal/lock"
	"repdir/internal/rep"
)

// ErrUnavailable reports that a representative cannot be reached: it is
// crashed, partitioned away, or its server is gone. Directory suites react
// by selecting a different quorum.
var ErrUnavailable = errors.New("transport: representative unavailable")

// ErrExpired reports that a request's propagated deadline had already
// passed (or provably could not be met) when the server would have
// started it, so the server refused to burn a worker on an answer the
// client can no longer use. Clients treat it like overload: retrying is
// pointless without both remaining deadline and retry budget.
var ErrExpired = errors.New("transport: request deadline expired before service")

// ErrOverloaded reports that the server shed the request under
// admission control: its dispatch queue's measured delay exceeded the
// target for a sustained interval, so the newest arrivals are rejected
// instead of queued (queueing them would only push every request past
// its deadline — the metastable-collapse mode). Clients must not retry
// on overload except against an explicit retry budget: blind retries
// multiply the very load being shed.
var ErrOverloaded = errors.New("transport: server overloaded, request shed")

// code is the wire form of the errors the algorithm must distinguish.
type code int

const (
	codeOK code = iota
	codeDie
	codeSentinel
	codeMissingBound
	codeBadRange
	codeNoNeighbor
	codeUnavailable
	codeTxnDecided
	codeUnknownTxn
	codeRecovering
	codeOther
	// codeStaleEpoch arrived with wire v2 (epoch fencing); appended
	// after codeOther so existing code values never change. An old
	// client maps it through the default branch to an opaque error,
	// which is right: it has no epoch machinery to react with.
	codeStaleEpoch
	// codeExpired and codeOverloaded arrived with wire v3 (deadline
	// propagation and admission control), appended for the same reason.
	// An old client sees them as opaque errors and does not retry,
	// which is exactly the conservative behavior overload needs.
	codeExpired
	codeOverloaded
)

// encodeError maps an error to its wire code plus display message.
func encodeError(err error) (code, string) {
	switch {
	case err == nil:
		return codeOK, ""
	case errors.Is(err, lock.ErrDie):
		return codeDie, err.Error()
	case errors.Is(err, rep.ErrSentinel):
		return codeSentinel, err.Error()
	case errors.Is(err, rep.ErrMissingBound):
		return codeMissingBound, err.Error()
	case errors.Is(err, rep.ErrBadRange):
		return codeBadRange, err.Error()
	case errors.Is(err, rep.ErrNoNeighbor):
		return codeNoNeighbor, err.Error()
	case errors.Is(err, ErrUnavailable):
		return codeUnavailable, err.Error()
	case errors.Is(err, rep.ErrTxnDecided):
		return codeTxnDecided, err.Error()
	case errors.Is(err, rep.ErrUnknownTxn):
		return codeUnknownTxn, err.Error()
	case errors.Is(err, rep.ErrRecovering):
		return codeRecovering, err.Error()
	case errors.Is(err, rep.ErrStaleEpoch):
		return codeStaleEpoch, err.Error()
	case errors.Is(err, ErrExpired):
		return codeExpired, err.Error()
	case errors.Is(err, ErrOverloaded):
		return codeOverloaded, err.Error()
	default:
		return codeOther, err.Error()
	}
}

// decodeError reconstructs an error whose identity survives errors.Is.
func decodeError(c code, msg string) error {
	switch c {
	case codeOK:
		return nil
	case codeDie:
		return fmt.Errorf("%w (remote: %s)", lock.ErrDie, msg)
	case codeSentinel:
		return fmt.Errorf("%w (remote: %s)", rep.ErrSentinel, msg)
	case codeMissingBound:
		return fmt.Errorf("%w (remote: %s)", rep.ErrMissingBound, msg)
	case codeBadRange:
		return fmt.Errorf("%w (remote: %s)", rep.ErrBadRange, msg)
	case codeNoNeighbor:
		return fmt.Errorf("%w (remote: %s)", rep.ErrNoNeighbor, msg)
	case codeUnavailable:
		return fmt.Errorf("%w (remote: %s)", ErrUnavailable, msg)
	case codeTxnDecided:
		return fmt.Errorf("%w (remote: %s)", rep.ErrTxnDecided, msg)
	case codeUnknownTxn:
		return fmt.Errorf("%w (remote: %s)", rep.ErrUnknownTxn, msg)
	case codeRecovering:
		return fmt.Errorf("%w (remote: %s)", rep.ErrRecovering, msg)
	case codeStaleEpoch:
		return fmt.Errorf("%w (remote: %s)", rep.ErrStaleEpoch, msg)
	case codeExpired:
		return fmt.Errorf("%w (remote: %s)", ErrExpired, msg)
	case codeOverloaded:
		return fmt.Errorf("%w (remote: %s)", ErrOverloaded, msg)
	default:
		return errors.New(msg)
	}
}
