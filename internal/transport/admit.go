package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: the server-side half of overload protection.
//
// A saturated server fails metastably if left alone: the dispatch queue
// grows without bound, every queued request waits longer than its
// client's deadline, the clients time out and retry, and the server
// spends all its capacity computing answers nobody is waiting for
// anymore. The controller here bounds the queue by *measured queue
// delay* rather than by length (a length bound must be retuned for
// every service-time change; a delay bound is the SLO itself), in the
// style of CoDel:
//
//   - every dispatched request carries its arrival time; the worker
//     that picks it up reports the sojourn (arrival → pickup);
//   - sojourns below the target reset the controller to the clear
//     state; a sojourn above the target starts (or continues) an
//     above-target episode;
//   - when an episode has lasted a full interval, the controller
//     declares overload and the decode loops shed *newly arriving*
//     sheddable requests with ErrOverloaded until a sojourn dips back
//     under the target. Shedding the newest arrivals (rather than
//     oldest, as classic CoDel drops from the head) keeps the requests
//     with the most accumulated queue delay — the ones closest to
//     completing their wait — while refusing work that would only wait
//     longer still.
//
// Two classes of request are never shed: two-phase-commit resolution
// (prepare, commit, abort, status — their transactions already hold
// locks on this and other representatives, so refusing them wedges the
// very work shedding is meant to protect) and the trivial name probe.
// Under full shed, the server therefore keeps draining 2PC traffic,
// which is what lets in-flight transactions finish and release locks
// while new work is refused.
//
// The controller also tracks an EWMA of request service time, which the
// expiry check uses to reject work that cannot finish before its
// propagated deadline ("won't-finish-in-time"): serving a request whose
// remaining budget is smaller than half a typical service time wastes a
// worker on an answer that will be discarded.

// Admission defaults. The 5ms target is ~25 typical quorum-op service
// times on loopback — far above healthy queueing jitter, far below any
// client deadline worth propagating.
const (
	DefaultAdmitTarget   = 5 * time.Millisecond
	DefaultAdmitInterval = 100 * time.Millisecond
)

// AdmissionStats counts the admission controller's decisions.
type AdmissionStats struct {
	// Admitted counts requests dispatched to workers.
	Admitted uint64
	// Shed counts requests rejected with ErrOverloaded.
	Shed uint64
	// Expired counts requests rejected with ErrExpired: their
	// propagated deadline had passed (or could not be met) by the time
	// a worker picked them up.
	Expired uint64
	// Episodes counts transitions into the overloaded state.
	Episodes uint64
}

// admitState is the per-server admission controller. The zero value is
// disabled (admit everything, still enforce hard expiry).
type admitState struct {
	enabled  bool
	target   time.Duration
	interval time.Duration

	overloaded atomic.Bool

	mu         sync.Mutex
	firstAbove time.Time // start of the current above-target episode

	admitted atomic.Uint64
	shed     atomic.Uint64
	expired  atomic.Uint64
	episodes atomic.Uint64

	// serviceEWMA is an exponentially weighted mean of handle() service
	// time in nanoseconds (α = 1/16), fed only by completed requests.
	// Zero until the first observation.
	serviceEWMA atomic.Int64
}

// pickup reports one request's queue sojourn and steps the CoDel state
// machine. Called by workers at dispatch time, including for requests
// about to be expiry-rejected — their waiting is the signal.
func (a *admitState) pickup(arrived time.Time) {
	if !a.enabled || arrived.IsZero() {
		return
	}
	sojourn := time.Since(arrived)
	if sojourn < a.target {
		a.mu.Lock()
		a.firstAbove = time.Time{}
		a.mu.Unlock()
		a.overloaded.Store(false)
		return
	}
	now := time.Now()
	a.mu.Lock()
	if a.firstAbove.IsZero() {
		a.firstAbove = now
		a.mu.Unlock()
		return
	}
	above := now.Sub(a.firstAbove)
	a.mu.Unlock()
	if above >= a.interval && a.overloaded.CompareAndSwap(false, true) {
		a.episodes.Add(1)
	}
}

// shouldShed reports whether a newly arrived sheddable request must be
// rejected right now.
func (a *admitState) shouldShed() bool {
	return a.enabled && a.overloaded.Load()
}

// overBacklog reports whether a dispatch queue of qlen requests drained
// by the given worker count already holds more than one target's worth
// of delay, judged against the measured service-time EWMA: the expected
// sojourn of the next admitted request is qlen*ewma/workers. The shed
// path requires this alongside the tripped controller so that shedding
// settles the queue at the delay target instead of at some fraction of
// the queue's capacity — the queue can then be sized generously to
// absorb bursts without the standing delay growing with it. A cold
// controller (no completed request yet) treats any backlog as over.
func (a *admitState) overBacklog(qlen, workers int) bool {
	if workers < 1 {
		workers = 1
	}
	ewma := a.serviceEWMA.Load()
	if ewma <= 0 {
		return qlen > 0
	}
	limit := int(int64(a.target) * int64(workers) / ewma)
	if limit < 1 {
		limit = 1
	}
	return qlen >= limit
}

// observeService feeds one completed request's service time into the
// EWMA.
func (a *admitState) observeService(d time.Duration) {
	if !a.enabled {
		return
	}
	for {
		old := a.serviceEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/16
		}
		if a.serviceEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// wontFinish reports whether a request with the given absolute deadline
// provably cannot be served in time: its remaining budget is below half
// the typical service time. Requires the EWMA to be warmed (a cold
// controller rejects nothing it does not have to).
func (a *admitState) wontFinish(deadline time.Time) bool {
	if !a.enabled || deadline.IsZero() {
		return false
	}
	ewma := a.serviceEWMA.Load()
	if ewma == 0 {
		return false
	}
	return time.Until(deadline) < time.Duration(ewma)/2
}

// snapshot freezes the counters.
func (a *admitState) snapshot() AdmissionStats {
	return AdmissionStats{
		Admitted: a.admitted.Load(),
		Shed:     a.shed.Load(),
		Expired:  a.expired.Load(),
		Episodes: a.episodes.Load(),
	}
}

// sheddable reports whether an op is new work the admission controller
// may refuse. Two-phase-commit resolution ops are never shed (their
// transactions hold locks; refusing them wedges everything behind those
// locks), and the name probe is too cheap to bother.
func sheddable(o op) bool {
	switch o {
	case opPrepare, opCommit, opAbort, opStatus, opName:
		return false
	}
	return true
}
