package transport

import (
	"context"
	"testing"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
)

// BenchmarkLocalLookup measures the in-process transport overhead.
func BenchmarkLocalLookup(b *testing.B) {
	l := NewLocal(rep.New("bench"))
	ctx := context.Background()
	key := keyspace.New("k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := lock.TxnID(i + 1)
		if _, err := l.Lookup(ctx, id, key); err != nil {
			b.Fatal(err)
		}
		l.Abort(ctx, id)
	}
}

// BenchmarkTCPRoundTrip measures a full gob request/response cycle over
// loopback.
func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := Serve(rep.New("bench"), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	key := keyspace.New("k")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := lock.TxnID(i + 1)
		if _, err := c.Lookup(ctx, id, key); err != nil {
			b.Fatal(err)
		}
		if err := c.Abort(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}
