package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"testing"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// BenchmarkLocalLookup measures the in-process transport overhead.
func BenchmarkLocalLookup(b *testing.B) {
	l := NewLocal(rep.New("bench"))
	ctx := context.Background()
	key := keyspace.New("k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := lock.TxnID(i + 1)
		if _, err := l.Lookup(ctx, id, key); err != nil {
			b.Fatal(err)
		}
		l.Abort(ctx, id)
	}
}

// BenchmarkTCPRoundTrip measures a full gob request/response cycle over
// loopback.
func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := Serve(rep.New("bench"), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	key := keyspace.New("k")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := lock.TxnID(i + 1)
		if _, err := c.Lookup(ctx, id, key); err != nil {
			b.Fatal(err)
		}
		if err := c.Abort(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

// delayDir adds a fixed service time to every Lookup, standing in for
// the lock waits, fsyncs, and network distance a loaded deployment sees.
// Loopback RTT is near zero, so without it a quorum benchmark measures
// only gob CPU cost and says nothing about pipelining.
type delayDir struct {
	rep.Directory
	delay time.Duration
}

func (d delayDir) Lookup(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	time.Sleep(d.delay)
	return d.Directory.Lookup(ctx, id, key)
}

// benchTCPQuorum models the suite's read-quorum round over TCP: each
// operation fans a Lookup out to all three members in parallel, waits
// for every reply, then releases the transaction with a parallel Abort.
// Each member takes serviceTime to serve a lookup. workers is how many
// quorum rounds are in flight at once — 1 reproduces the old
// single-in-flight client behavior, higher values exercise the
// multiplexed connection.
func benchTCPQuorum(b *testing.B, workers int) {
	const (
		members     = 3
		serviceTime = 500 * time.Microsecond
	)
	ctx := context.Background()
	clients := make([]*Client, members)
	for i := range clients {
		srv, err := Serve(delayDir{Directory: rep.New(fmt.Sprintf("m%d", i)), delay: serviceTime}, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	key := keyspace.New("k")
	fanOut := func(do func(c *Client)) {
		var wg sync.WaitGroup
		for _, c := range clients {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				do(c)
			}(c)
		}
		wg.Wait()
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				id := lock.TxnID(n)
				fanOut(func(c *Client) {
					if _, err := c.Lookup(ctx, id, key); err != nil {
						b.Error(err)
					}
				})
				fanOut(func(c *Client) {
					if err := c.Abort(ctx, id); err != nil {
						b.Error(err)
					}
				})
			}
		}()
	}
	wg.Wait()
}

// nopDir answers every operation instantly with zero values. Quorum
// benchmarks over it measure pure transport cost: codec CPU, framing,
// and syscalls, with no directory or lock-manager time mixed in.
type nopDir struct{ name string }

var _ rep.Directory = nopDir{}

func (d nopDir) Name() string { return d.name }
func (d nopDir) Lookup(context.Context, lock.TxnID, keyspace.Key) (rep.LookupResult, error) {
	return rep.LookupResult{Found: true, Version: 1, Value: "v"}, nil
}
func (d nopDir) Predecessor(context.Context, lock.TxnID, keyspace.Key) (rep.NeighborResult, error) {
	return rep.NeighborResult{Key: keyspace.Low(), Version: 1}, nil
}
func (d nopDir) Successor(context.Context, lock.TxnID, keyspace.Key) (rep.NeighborResult, error) {
	return rep.NeighborResult{Key: keyspace.High(), Version: 1}, nil
}
func (d nopDir) PredecessorBatch(context.Context, lock.TxnID, keyspace.Key, int) ([]rep.NeighborResult, error) {
	return nil, nil
}
func (d nopDir) SuccessorBatch(context.Context, lock.TxnID, keyspace.Key, int) ([]rep.NeighborResult, error) {
	return nil, nil
}
func (d nopDir) Insert(context.Context, lock.TxnID, keyspace.Key, version.V, string) error {
	return nil
}
func (d nopDir) Coalesce(context.Context, lock.TxnID, keyspace.Key, keyspace.Key, version.V) (rep.CoalesceResult, error) {
	return rep.CoalesceResult{}, nil
}
func (d nopDir) Prepare(context.Context, lock.TxnID) error              { return nil }
func (d nopDir) Commit(context.Context, lock.TxnID) error               { return nil }
func (d nopDir) Abort(context.Context, lock.TxnID) error                { return nil }
func (d nopDir) Status(context.Context, lock.TxnID) (rep.TxnStatus, error) { return 0, nil }

// benchQuorumRound is the codec comparison harness: one round = a
// 3-member Lookup fan-out plus a 3-member Abort fan-out (6 messages),
// with `workers` rounds in flight over the same single connection per
// member. Members answer instantly (nopDir), so ns/op is transport
// cost — exactly what the gob→binary migration targets.
func benchQuorumRound(b *testing.B, workers int, dialOpts ...DialOption) {
	const members = 3
	ctx := context.Background()
	clients := make([]*Client, members)
	for i := range clients {
		srv, err := Serve(nopDir{name: fmt.Sprintf("m%d", i)}, "127.0.0.1:0", WithPerConnConcurrency(4*workers))
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr(), dialOpts...)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	key := keyspace.New("k")
	// Mirror core's fanOut: leader leg inline, goroutines for the rest.
	fanOut := func(do func(c *Client) error) {
		var wg sync.WaitGroup
		for i := 1; i < len(clients); i++ {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				if err := do(c); err != nil {
					b.Error(err)
				}
			}(clients[i])
		}
		if err := do(clients[0]); err != nil {
			b.Error(err)
		}
		wg.Wait()
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				id := lock.TxnID(n)
				fanOut(func(c *Client) error {
					_, err := c.Lookup(ctx, id, key)
					return err
				})
				fanOut(func(c *Client) error {
					return c.Abort(ctx, id)
				})
			}
		}()
	}
	wg.Wait()
}

// BenchmarkTCPQuorumRound is the acceptance benchmark for the binary
// codec: same machine, same harness, three codecs. "gob" is the
// pre-codec baseline, "binary_nobatch" isolates the codec win
// (every message in its own frame), "binary" adds group-commit
// batching on top.
func BenchmarkTCPQuorumRound(b *testing.B) {
	const workers = 16
	b.Run("gob", func(b *testing.B) {
		benchQuorumRound(b, workers, WithGobProtocol())
	})
	b.Run("binary_nobatch", func(b *testing.B) {
		benchQuorumRound(b, workers, WithMaxBatch(1))
	})
	b.Run("binary", func(b *testing.B) {
		benchQuorumRound(b, workers)
	})
}

// benchSingleConn saturates ONE client connection with pipelined
// lookups from `workers` goroutines — the "single-connection
// throughput" number the codec migration is judged on.
func benchSingleConn(b *testing.B, workers int, dialOpts ...DialOption) {
	srv, err := Serve(nopDir{name: "s"}, "127.0.0.1:0", WithPerConnConcurrency(4*workers))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), dialOpts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	key := keyspace.New("k")
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				if _, err := c.Lookup(ctx, lock.TxnID(n), key); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkTCPSingleConn sweeps codec × concurrency on one connection.
func BenchmarkTCPSingleConn(b *testing.B) {
	for _, workers := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("gob/workers=%d", workers), func(b *testing.B) {
			benchSingleConn(b, workers, WithGobProtocol())
		})
		b.Run(fmt.Sprintf("binary_nobatch/workers=%d", workers), func(b *testing.B) {
			benchSingleConn(b, workers, WithMaxBatch(1))
		})
		b.Run(fmt.Sprintf("binary/workers=%d", workers), func(b *testing.B) {
			benchSingleConn(b, workers)
		})
	}
}

// BenchmarkWireEncodeRequest measures the raw codec encode path.
func BenchmarkWireEncodeRequest(b *testing.B) {
	req := request{ID: 42, Op: opInsert, Txn: 7, Key: keyspace.New("some/key"), Version: 12, Value: "payload-value"}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendRequest(buf[:0], &req, wireVersion)
	}
	_ = buf
}

// BenchmarkWireDecodeResponse measures the raw codec decode path.
func BenchmarkWireDecodeResponse(b *testing.B) {
	resp := response{ID: 42, Op: opLookup, Code: codeOK, Found: true, Version: 12, Value: "payload-value"}
	buf := appendResponse(nil, &resp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := wireReader{buf: buf}
		var got response
		if err := r.readResponse(&got); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeZeroAlloc pins the codec's steady-state allocation behavior:
// encoding any request or response into a reused buffer must not
// allocate, and decoding messages whose fields need no owned copies
// (the whole 2PC surface) must not allocate either. String-bearing
// decodes (keys, values) pay exactly their materialization — that cost
// is the rep API's, not the codec's.
func TestEncodeZeroAlloc(t *testing.T) {
	reqs := wireRequestVariants()
	resps := wireResponseVariants()
	buf := make([]byte, 0, 4096)
	if n := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		for i := range reqs {
			buf = appendRequest(buf, &reqs[i], wireVersion)
		}
		for i := range resps {
			buf = appendResponse(buf, &resps[i])
		}
	}); n != 0 {
		t.Errorf("encode path allocates %.1f times per run, want 0", n)
	}

	twoPC := []request{
		{ID: 1, Op: opPrepare, Txn: 2},
		{ID: 3, Op: opCommit, Txn: 4},
		{ID: 5, Op: opAbort, Txn: 6},
		{ID: 7, Op: opStatus, Txn: 8},
	}
	var pcBuf []byte
	for i := range twoPC {
		pcBuf = appendRequest(pcBuf, &twoPC[i], wireVersion)
	}
	if n := testing.AllocsPerRun(100, func() {
		r := wireReader{buf: pcBuf}
		var req request
		for r.remaining() > 0 {
			if err := r.readRequest(&req, wireVersion); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("2PC request decode allocates %.1f times per run, want 0", n)
	}

	pcResps := []response{
		{ID: 1, Op: opPrepare}, {ID: 3, Op: opCommit},
		{ID: 5, Op: opAbort}, {ID: 7, Op: opStatus, TxnStatus: 1},
	}
	var prBuf []byte
	for i := range pcResps {
		prBuf = appendResponse(prBuf, &pcResps[i])
	}
	if n := testing.AllocsPerRun(100, func() {
		r := wireReader{buf: prBuf}
		var resp response
		for r.remaining() > 0 {
			if err := r.readResponse(&resp); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("2PC response decode allocates %.1f times per run, want 0", n)
	}
}

// BenchmarkTCPQuorumSerial is the old client's ceiling: one quorum
// round in flight at a time.
func BenchmarkTCPQuorumSerial(b *testing.B) { benchTCPQuorum(b, 1) }

// BenchmarkTCPQuorumPipelined keeps 8 quorum rounds in flight over the
// same three connections; the multiplexed transport must let them
// overlap.
func BenchmarkTCPQuorumPipelined(b *testing.B) { benchTCPQuorum(b, 8) }

// BenchmarkTCPLookupConcurrent sweeps single-connection lookup
// throughput across client-side concurrency levels.
func BenchmarkTCPLookupConcurrent(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			srv, err := Serve(rep.New("bench"), "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			key := keyspace.New("k")
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						id := lock.TxnID(n)
						if _, err := c.Lookup(ctx, id, key); err != nil {
							b.Error(err)
						}
						if err := c.Abort(ctx, id); err != nil {
							b.Error(err)
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
