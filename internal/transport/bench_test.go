package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"testing"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
)

// BenchmarkLocalLookup measures the in-process transport overhead.
func BenchmarkLocalLookup(b *testing.B) {
	l := NewLocal(rep.New("bench"))
	ctx := context.Background()
	key := keyspace.New("k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := lock.TxnID(i + 1)
		if _, err := l.Lookup(ctx, id, key); err != nil {
			b.Fatal(err)
		}
		l.Abort(ctx, id)
	}
}

// BenchmarkTCPRoundTrip measures a full gob request/response cycle over
// loopback.
func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := Serve(rep.New("bench"), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	key := keyspace.New("k")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := lock.TxnID(i + 1)
		if _, err := c.Lookup(ctx, id, key); err != nil {
			b.Fatal(err)
		}
		if err := c.Abort(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

// delayDir adds a fixed service time to every Lookup, standing in for
// the lock waits, fsyncs, and network distance a loaded deployment sees.
// Loopback RTT is near zero, so without it a quorum benchmark measures
// only gob CPU cost and says nothing about pipelining.
type delayDir struct {
	rep.Directory
	delay time.Duration
}

func (d delayDir) Lookup(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	time.Sleep(d.delay)
	return d.Directory.Lookup(ctx, id, key)
}

// benchTCPQuorum models the suite's read-quorum round over TCP: each
// operation fans a Lookup out to all three members in parallel, waits
// for every reply, then releases the transaction with a parallel Abort.
// Each member takes serviceTime to serve a lookup. workers is how many
// quorum rounds are in flight at once — 1 reproduces the old
// single-in-flight client behavior, higher values exercise the
// multiplexed connection.
func benchTCPQuorum(b *testing.B, workers int) {
	const (
		members     = 3
		serviceTime = 500 * time.Microsecond
	)
	ctx := context.Background()
	clients := make([]*Client, members)
	for i := range clients {
		srv, err := Serve(delayDir{Directory: rep.New(fmt.Sprintf("m%d", i)), delay: serviceTime}, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	key := keyspace.New("k")
	fanOut := func(do func(c *Client)) {
		var wg sync.WaitGroup
		for _, c := range clients {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				do(c)
			}(c)
		}
		wg.Wait()
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				id := lock.TxnID(n)
				fanOut(func(c *Client) {
					if _, err := c.Lookup(ctx, id, key); err != nil {
						b.Error(err)
					}
				})
				fanOut(func(c *Client) {
					if err := c.Abort(ctx, id); err != nil {
						b.Error(err)
					}
				})
			}
		}()
	}
	wg.Wait()
}

// BenchmarkTCPQuorumSerial is the old client's ceiling: one quorum
// round in flight at a time.
func BenchmarkTCPQuorumSerial(b *testing.B) { benchTCPQuorum(b, 1) }

// BenchmarkTCPQuorumPipelined keeps 8 quorum rounds in flight over the
// same three connections; the multiplexed transport must let them
// overlap.
func BenchmarkTCPQuorumPipelined(b *testing.B) { benchTCPQuorum(b, 8) }

// BenchmarkTCPLookupConcurrent sweeps single-connection lookup
// throughput across client-side concurrency levels.
func BenchmarkTCPLookupConcurrent(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			srv, err := Serve(rep.New("bench"), "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			key := keyspace.New("k")
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						id := lock.TxnID(n)
						if _, err := c.Lookup(ctx, id, key); err != nil {
							b.Error(err)
						}
						if err := c.Abort(ctx, id); err != nil {
							b.Error(err)
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
