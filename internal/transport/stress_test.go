package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
)

// slowDir delays Lookup on the key "slow"; every other operation passes
// straight through. It lets tests hold one request open on a connection
// while others race past it.
type slowDir struct {
	rep.Directory
	delay time.Duration
}

func (d slowDir) Lookup(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	if key.Equal(keyspace.New("slow")) {
		t := time.NewTimer(d.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return rep.LookupResult{}, ctx.Err()
		}
	}
	return d.Directory.Lookup(ctx, id, key)
}

// breakConn force-closes the client's current TCP connection, simulating
// a mid-stream network reset.
func breakConn(t *testing.T, c *Client) {
	t.Helper()
	c.mu.Lock()
	cc := c.cc
	c.mu.Unlock()
	if cc == nil {
		t.Fatal("client has no live connection to break")
	}
	cc.conn.Close()
}

// TestTCPStressNoCrossWiring fires many goroutines' worth of lookups
// through ONE multiplexed client and checks every response carries the
// value of the key that was asked for — an ID mix-up in the demux path
// would hand a caller some other call's answer.
func TestTCPStressNoCrossWiring(t *testing.T) {
	r := rep.New("stress")
	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Seed distinct values so a cross-wired response is detectable.
	const keys = 32
	for i := 0; i < keys; i++ {
		if err := c.Insert(ctx, 1, keyspace.New(fmt.Sprintf("k%02d", i)), 1, fmt.Sprintf("val-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		ops     = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := lock.TxnID(100 + w)
			defer c.Abort(ctx, id)
			for j := 0; j < ops; j++ {
				n := (w*ops + j) % keys
				res, err := c.Lookup(ctx, id, keyspace.New(fmt.Sprintf("k%02d", n)))
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, j, err)
					return
				}
				if want := fmt.Sprintf("val-%02d", n); !res.Found || res.Value != want {
					errs <- fmt.Errorf("worker %d: lookup k%02d = %+v, want %q (cross-wired response?)", w, n, res, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTCPConnKillFailsOnlyInFlight kills the connection while several
// calls are outstanding: exactly those calls must fail with
// ErrUnavailable, and the client must redial cleanly for the next call.
func TestTCPConnKillFailsOnlyInFlight(t *testing.T) {
	dir := slowDir{Directory: rep.New("kill"), delay: 2 * time.Second}
	srv, err := Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A call completed before the kill is unaffected.
	if _, err := c.Lookup(ctx, 1, keyspace.New("fast")); err != nil {
		t.Fatal(err)
	}
	c.Abort(ctx, 1)

	const inflight = 3
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Lookup(ctx, lock.TxnID(10+i), keyspace.New("slow"))
		}(i)
	}
	// Give the calls time to reach the server, then cut the wire.
	time.Sleep(50 * time.Millisecond)
	breakConn(t, c)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrUnavailable) {
			t.Errorf("in-flight call %d after conn kill = %v, want ErrUnavailable", i, err)
		}
	}

	// The next call redials and succeeds; the failure did not poison the
	// client.
	if _, err := c.Lookup(ctx, 20, keyspace.New("fast")); err != nil {
		t.Fatalf("call after redial: %v", err)
	}
	c.Abort(ctx, 20)
}

// TestTCPConcurrentDeadlines is the regression test for the shared
// SetDeadline race: one call with a short deadline must time out on its
// own without disturbing a concurrent call with a long deadline on the
// SAME connection. (The old client stamped per-call deadlines onto the
// shared socket, so the short deadline killed whichever read was
// pending.)
func TestTCPConcurrentDeadlines(t *testing.T) {
	dir := slowDir{Directory: rep.New("deadline"), delay: 300 * time.Millisecond}
	srv, err := Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	var patientErr, hastyErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		patient, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		_, patientErr = c.Lookup(patient, 1, keyspace.New("slow"))
	}()
	go func() {
		defer wg.Done()
		hasty, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
		defer cancel()
		_, hastyErr = c.Lookup(hasty, 2, keyspace.New("slow"))
	}()
	wg.Wait()
	if !errors.Is(hastyErr, context.DeadlineExceeded) {
		t.Errorf("short-deadline call = %v, want DeadlineExceeded", hastyErr)
	}
	if patientErr != nil {
		t.Errorf("long-deadline call = %v, want success (short deadline leaked onto shared conn?)", patientErr)
	}
	c.Abort(ctx, 1)
	c.Abort(ctx, 2)
}

// TestTCPNoHeadOfLineBlocking checks the server dispatches requests from
// one connection concurrently: a fast lookup issued after a slow one
// completes while the slow one is still being served.
func TestTCPNoHeadOfLineBlocking(t *testing.T) {
	dir := slowDir{Directory: rep.New("hol"), delay: 400 * time.Millisecond}
	srv, err := Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Lookup(ctx, 1, keyspace.New("slow"))
		slowDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the slow request reach the server
	start := time.Now()
	if _, err := c.Lookup(ctx, 2, keyspace.New("fast")); err != nil {
		t.Fatal(err)
	}
	fastElapsed := time.Since(start)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	if fastElapsed > 200*time.Millisecond {
		t.Errorf("fast lookup took %v behind a slow one; pipelining is not overlapping requests", fastElapsed)
	}
	c.Abort(ctx, 1)
	c.Abort(ctx, 2)
}

// TestTCPPerConnConcurrencyLimit checks the server-side bound: with a
// limit of 1, the fast request queues behind the slow one.
func TestTCPPerConnConcurrencyLimit(t *testing.T) {
	dir := slowDir{Directory: rep.New("limit"), delay: 200 * time.Millisecond}
	srv, err := Serve(dir, "127.0.0.1:0", WithPerConnConcurrency(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	go c.Lookup(ctx, 1, keyspace.New("slow"))
	time.Sleep(30 * time.Millisecond) // slow request is being served
	start := time.Now()
	if _, err := c.Lookup(ctx, 2, keyspace.New("fast")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("fast lookup took only %v with concurrency limit 1; limit not enforced", elapsed)
	}
	c.Abort(ctx, 1)
	c.Abort(ctx, 2)
}

// TestTCPAbandonedCallResponseDiscarded cancels a call mid-flight and
// then keeps using the client: the late response for the abandoned ID
// must be discarded, not delivered to a later call.
func TestTCPAbandonedCallResponseDiscarded(t *testing.T) {
	dir := slowDir{Directory: rep.New("abandon"), delay: 150 * time.Millisecond}
	srv, err := Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Insert(ctx, 1, keyspace.New("fast"), 1, "fast-value"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}

	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	_, err = c.Lookup(short, 2, keyspace.New("slow"))
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned call = %v, want DeadlineExceeded", err)
	}
	// Issue fresh calls while the abandoned response is still in flight;
	// none of them may receive it.
	for i := 0; i < 5; i++ {
		res, err := c.Lookup(ctx, lock.TxnID(10+i), keyspace.New("fast"))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value != "fast-value" {
			t.Fatalf("lookup %d = %+v; received another call's response", i, res)
		}
	}
	time.Sleep(200 * time.Millisecond) // let the abandoned response arrive and be dropped
	if _, err := c.Lookup(ctx, 20, keyspace.New("fast")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Abort(ctx, lock.TxnID(10+i))
	}
	c.Abort(ctx, 2)
	c.Abort(ctx, 20)
}
