package transport

import (
	"context"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// Op names a Directory operation for middleware hooks.
type Op string

// Operation names passed to Middleware hooks.
const (
	OpLookup           Op = "lookup"
	OpPredecessor      Op = "predecessor"
	OpSuccessor        Op = "successor"
	OpPredecessorBatch Op = "predecessor-batch"
	OpSuccessorBatch   Op = "successor-batch"
	OpInsert           Op = "insert"
	OpCoalesce         Op = "coalesce"
	OpPrepare          Op = "prepare"
	OpCommit           Op = "commit"
	OpAbort            Op = "abort"
	OpStatus           Op = "status"
)

// IsInquiry reports whether the operation is a read-class message
// (DirRepLookup / DirRepPredecessor / DirRepSuccessor and their batches).
func (o Op) IsInquiry() bool {
	switch o {
	case OpLookup, OpPredecessor, OpSuccessor, OpPredecessorBatch, OpSuccessorBatch:
		return true
	default:
		return false
	}
}

// IsMutation reports whether the operation modifies directory state
// (DirRepInsert / DirRepCoalesce).
func (o Op) IsMutation() bool {
	return o == OpInsert || o == OpCoalesce
}

// Middleware adapts a representative with per-call hooks; it is the
// building block for fault injectors, partitions, and traffic counters
// (the simulation and test harnesses are built on it). Target selects
// the representative per call, which also supports swapping in a
// recovered incarnation; Before, when set, runs first and may fail the
// call by returning an error.
type Middleware struct {
	// Target returns the representative to forward to. Required.
	Target func() rep.Directory
	// Before, if non-nil, runs before each call; a non-nil error is
	// returned to the caller without reaching the target.
	Before func(op Op) error
}

var _ rep.Directory = (*Middleware)(nil)

// Wrap builds a Middleware over a fixed target.
func Wrap(target rep.Directory, before func(op Op) error) *Middleware {
	return &Middleware{
		Target: func() rep.Directory { return target },
		Before: before,
	}
}

func (m *Middleware) pre(op Op) error {
	if m.Before == nil {
		return nil
	}
	return m.Before(op)
}

// Name implements rep.Directory.
func (m *Middleware) Name() string { return m.Target().Name() }

// Lookup implements rep.Directory.
func (m *Middleware) Lookup(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	if err := m.pre(OpLookup); err != nil {
		return rep.LookupResult{}, err
	}
	return m.Target().Lookup(ctx, id, key)
}

// Predecessor implements rep.Directory.
func (m *Middleware) Predecessor(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	if err := m.pre(OpPredecessor); err != nil {
		return rep.NeighborResult{}, err
	}
	return m.Target().Predecessor(ctx, id, key)
}

// Successor implements rep.Directory.
func (m *Middleware) Successor(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	if err := m.pre(OpSuccessor); err != nil {
		return rep.NeighborResult{}, err
	}
	return m.Target().Successor(ctx, id, key)
}

// PredecessorBatch implements rep.Directory.
func (m *Middleware) PredecessorBatch(ctx context.Context, id lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	if err := m.pre(OpPredecessorBatch); err != nil {
		return nil, err
	}
	return m.Target().PredecessorBatch(ctx, id, key, max)
}

// SuccessorBatch implements rep.Directory.
func (m *Middleware) SuccessorBatch(ctx context.Context, id lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	if err := m.pre(OpSuccessorBatch); err != nil {
		return nil, err
	}
	return m.Target().SuccessorBatch(ctx, id, key, max)
}

// Insert implements rep.Directory.
func (m *Middleware) Insert(ctx context.Context, id lock.TxnID, key keyspace.Key, ver version.V, value string) error {
	if err := m.pre(OpInsert); err != nil {
		return err
	}
	return m.Target().Insert(ctx, id, key, ver, value)
}

// Coalesce implements rep.Directory.
func (m *Middleware) Coalesce(ctx context.Context, id lock.TxnID, lo, hi keyspace.Key, ver version.V) (rep.CoalesceResult, error) {
	if err := m.pre(OpCoalesce); err != nil {
		return rep.CoalesceResult{}, err
	}
	return m.Target().Coalesce(ctx, id, lo, hi, ver)
}

// Prepare implements rep.Directory.
func (m *Middleware) Prepare(ctx context.Context, id lock.TxnID) error {
	if err := m.pre(OpPrepare); err != nil {
		return err
	}
	return m.Target().Prepare(ctx, id)
}

// Commit implements rep.Directory.
func (m *Middleware) Commit(ctx context.Context, id lock.TxnID) error {
	if err := m.pre(OpCommit); err != nil {
		return err
	}
	return m.Target().Commit(ctx, id)
}

// Abort implements rep.Directory.
func (m *Middleware) Abort(ctx context.Context, id lock.TxnID) error {
	if err := m.pre(OpAbort); err != nil {
		return err
	}
	return m.Target().Abort(ctx, id)
}

// Status implements rep.Directory.
func (m *Middleware) Status(ctx context.Context, id lock.TxnID) (rep.TxnStatus, error) {
	if err := m.pre(OpStatus); err != nil {
		return 0, err
	}
	return m.Target().Status(ctx, id)
}
