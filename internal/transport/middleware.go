package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/obs"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// Op names a Directory operation for middleware hooks.
type Op string

// Operation names passed to Middleware hooks.
const (
	OpLookup           Op = "lookup"
	OpPredecessor      Op = "predecessor"
	OpSuccessor        Op = "successor"
	OpPredecessorBatch Op = "predecessor-batch"
	OpSuccessorBatch   Op = "successor-batch"
	OpInsert           Op = "insert"
	OpCoalesce         Op = "coalesce"
	OpPrepare          Op = "prepare"
	OpCommit           Op = "commit"
	OpAbort            Op = "abort"
	OpStatus           Op = "status"
)

// IsInquiry reports whether the operation is a read-class message
// (DirRepLookup / DirRepPredecessor / DirRepSuccessor and their batches).
func (o Op) IsInquiry() bool {
	switch o {
	case OpLookup, OpPredecessor, OpSuccessor, OpPredecessorBatch, OpSuccessorBatch:
		return true
	default:
		return false
	}
}

// IsMutation reports whether the operation modifies directory state
// (DirRepInsert / DirRepCoalesce).
func (o Op) IsMutation() bool {
	return o == OpInsert || o == OpCoalesce
}

// OpStats is a point-in-time snapshot of one operation's counters.
type OpStats struct {
	// Calls counts completed calls (errors included). Blocked counts
	// calls rejected by a Before hook; they never reach the target and
	// contribute no latency.
	Calls   uint64
	Blocked uint64
	// Errors counts completed calls that returned a non-nil error.
	Errors uint64
	// InFlight is the number of calls currently inside the target;
	// MaxInFlight is the high-water mark.
	InFlight    int64
	MaxInFlight int64
	// Total is cumulative latency across completed calls.
	Total time.Duration
	// Latency is the full latency distribution of completed calls
	// (fixed log buckets; see package obs), from which any quantile can
	// be read — the cumulative Total alone hides tail behavior.
	Latency obs.HistogramSnapshot
}

// Avg returns mean latency per completed call.
func (s OpStats) Avg() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Calls)
}

// opCounters is the live (atomic) form of OpStats.
type opCounters struct {
	calls       atomic.Uint64
	blocked     atomic.Uint64
	errors      atomic.Uint64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	totalNanos  atomic.Int64
	latency     obs.Histogram
}

// allOps enumerates every operation a Directory can receive.
var allOps = []Op{
	OpLookup, OpPredecessor, OpSuccessor, OpPredecessorBatch,
	OpSuccessorBatch, OpInsert, OpCoalesce, OpPrepare, OpCommit,
	OpAbort, OpStatus,
}

// CallStats tracks per-operation call counts, error counts, in-flight
// gauges, and cumulative latency for a Middleware. With a multiplexed
// transport many calls overlap on one connection; the in-flight gauge
// (and its high-water mark) makes that overlap observable. Safe for
// concurrent use; attach one via Middleware.Stats or WrapStats.
type CallStats struct {
	per map[Op]*opCounters
}

// NewCallStats builds an empty counter set.
func NewCallStats() *CallStats {
	s := &CallStats{per: make(map[Op]*opCounters, len(allOps))}
	for _, op := range allOps {
		s.per[op] = &opCounters{}
	}
	return s
}

// begin marks a call entering the target and returns the closure that
// records its completion.
func (s *CallStats) begin(op Op) func(error) {
	c := s.per[op]
	if c == nil {
		return func(error) {}
	}
	n := c.inFlight.Add(1)
	for {
		max := c.maxInFlight.Load()
		if n <= max || c.maxInFlight.CompareAndSwap(max, n) {
			break
		}
	}
	start := time.Now()
	return func(err error) {
		d := time.Since(start)
		c.inFlight.Add(-1)
		c.calls.Add(1)
		c.totalNanos.Add(int64(d))
		c.latency.Observe(d)
		if err != nil {
			c.errors.Add(1)
		}
	}
}

// block records a call rejected by a Before hook.
func (s *CallStats) block(op Op) {
	if c := s.per[op]; c != nil {
		c.blocked.Add(1)
	}
}

// Op returns a snapshot of one operation's counters.
func (s *CallStats) Op(op Op) OpStats {
	c := s.per[op]
	if c == nil {
		return OpStats{}
	}
	return OpStats{
		Calls:       c.calls.Load(),
		Blocked:     c.blocked.Load(),
		Errors:      c.errors.Load(),
		InFlight:    c.inFlight.Load(),
		MaxInFlight: c.maxInFlight.Load(),
		Total:       time.Duration(c.totalNanos.Load()),
		Latency:     c.latency.Snapshot(),
	}
}

// Snapshot returns every operation's counters.
func (s *CallStats) Snapshot() map[Op]OpStats {
	out := make(map[Op]OpStats, len(s.per))
	for op := range s.per {
		out[op] = s.Op(op)
	}
	return out
}

// InFlight sums the calls currently in flight across all operations.
func (s *CallStats) InFlight() int64 {
	var n int64
	for _, c := range s.per {
		n += c.inFlight.Load()
	}
	return n
}

// LatencySamples renders the per-operation latency histograms as
// exposition samples, prefixing each sample's labels with the given
// values (e.g. the member name). Registered via obs.Registry.
// HistogramVec with label names prefix..., "op".
func (s *CallStats) LatencySamples(prefix ...string) []obs.HistSample {
	out := make([]obs.HistSample, 0, len(s.per))
	for op, c := range s.per {
		snap := c.latency.Snapshot()
		if snap.Count == 0 {
			continue
		}
		labels := append(append([]string(nil), prefix...), string(op))
		out = append(out, obs.HistSample{Labels: labels, Snap: snap})
	}
	return out
}

// Middleware adapts a representative with per-call hooks; it is the
// building block for fault injectors, partitions, and traffic counters
// (the simulation and test harnesses are built on it). Target selects
// the representative per call, which also supports swapping in a
// recovered incarnation; Before, when set, runs first and may fail the
// call by returning an error; Stats, when set, counts calls, errors,
// in-flight gauges, and latency per operation.
type Middleware struct {
	// Target returns the representative to forward to. Required.
	Target func() rep.Directory
	// Before, if non-nil, runs before each call; a non-nil error is
	// returned to the caller without reaching the target.
	Before func(op Op) error
	// After, if non-nil, observes each completed call's outcome (calls
	// blocked by Before are not reported). Health trackers hook in
	// here to learn reachability at the transport layer.
	After func(op Op, err error)
	// Stats, if non-nil, receives per-operation counters.
	Stats *CallStats
}

var _ rep.Directory = (*Middleware)(nil)

// Wrap builds a Middleware over a fixed target.
func Wrap(target rep.Directory, before func(op Op) error) *Middleware {
	return &Middleware{
		Target: func() rep.Directory { return target },
		Before: before,
	}
}

// WrapStats builds a counting Middleware over a fixed target and returns
// the counters alongside it.
func WrapStats(target rep.Directory) (*Middleware, *CallStats) {
	stats := NewCallStats()
	return &Middleware{
		Target: func() rep.Directory { return target },
		Stats:  stats,
	}, stats
}

// HealthReporter receives per-call reachability outcomes; it is
// satisfied by core.HealthTracker, so a tracker can be fed from the
// middleware stack instead of (or in addition to) quorum fan-out.
type HealthReporter interface {
	ReportSuccess(member string)
	ReportFailure(member string)
}

// WrapHealth builds a Middleware over a fixed target that reports every
// call's outcome to hr: ErrUnavailable counts as a failure, any other
// completion (errors included — a reply proves reachability) as a
// success.
func WrapHealth(target rep.Directory, hr HealthReporter) *Middleware {
	name := target.Name()
	return &Middleware{
		Target: func() rep.Directory { return target },
		After: func(_ Op, err error) {
			if errors.Is(err, ErrUnavailable) {
				hr.ReportFailure(name)
			} else {
				hr.ReportSuccess(name)
			}
		},
	}
}

// begin runs the Before hook and opens the stats window. It returns the
// completion closure, or an error when the hook blocked the call.
func (m *Middleware) begin(op Op) (func(error), error) {
	if m.Before != nil {
		if err := m.Before(op); err != nil {
			if m.Stats != nil {
				m.Stats.block(op)
			}
			return nil, err
		}
	}
	var end func(error)
	if m.Stats != nil {
		end = m.Stats.begin(op)
	}
	after := m.After
	if end == nil && after == nil {
		return func(error) {}, nil
	}
	return func(err error) {
		if end != nil {
			end(err)
		}
		if after != nil {
			after(op, err)
		}
	}, nil
}

// Name implements rep.Directory.
func (m *Middleware) Name() string { return m.Target().Name() }

// Lookup implements rep.Directory.
func (m *Middleware) Lookup(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	end, err := m.begin(OpLookup)
	if err != nil {
		return rep.LookupResult{}, err
	}
	r, err := m.Target().Lookup(ctx, id, key)
	end(err)
	return r, err
}

// Predecessor implements rep.Directory.
func (m *Middleware) Predecessor(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	end, err := m.begin(OpPredecessor)
	if err != nil {
		return rep.NeighborResult{}, err
	}
	r, err := m.Target().Predecessor(ctx, id, key)
	end(err)
	return r, err
}

// Successor implements rep.Directory.
func (m *Middleware) Successor(ctx context.Context, id lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	end, err := m.begin(OpSuccessor)
	if err != nil {
		return rep.NeighborResult{}, err
	}
	r, err := m.Target().Successor(ctx, id, key)
	end(err)
	return r, err
}

// PredecessorBatch implements rep.Directory.
func (m *Middleware) PredecessorBatch(ctx context.Context, id lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	end, err := m.begin(OpPredecessorBatch)
	if err != nil {
		return nil, err
	}
	r, err := m.Target().PredecessorBatch(ctx, id, key, max)
	end(err)
	return r, err
}

// SuccessorBatch implements rep.Directory.
func (m *Middleware) SuccessorBatch(ctx context.Context, id lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	end, err := m.begin(OpSuccessorBatch)
	if err != nil {
		return nil, err
	}
	r, err := m.Target().SuccessorBatch(ctx, id, key, max)
	end(err)
	return r, err
}

// Insert implements rep.Directory.
func (m *Middleware) Insert(ctx context.Context, id lock.TxnID, key keyspace.Key, ver version.V, value string) error {
	end, err := m.begin(OpInsert)
	if err != nil {
		return err
	}
	err = m.Target().Insert(ctx, id, key, ver, value)
	end(err)
	return err
}

// Coalesce implements rep.Directory.
func (m *Middleware) Coalesce(ctx context.Context, id lock.TxnID, lo, hi keyspace.Key, ver version.V) (rep.CoalesceResult, error) {
	end, err := m.begin(OpCoalesce)
	if err != nil {
		return rep.CoalesceResult{}, err
	}
	r, err := m.Target().Coalesce(ctx, id, lo, hi, ver)
	end(err)
	return r, err
}

// Prepare implements rep.Directory.
func (m *Middleware) Prepare(ctx context.Context, id lock.TxnID) error {
	end, err := m.begin(OpPrepare)
	if err != nil {
		return err
	}
	err = m.Target().Prepare(ctx, id)
	end(err)
	return err
}

// Commit implements rep.Directory.
func (m *Middleware) Commit(ctx context.Context, id lock.TxnID) error {
	end, err := m.begin(OpCommit)
	if err != nil {
		return err
	}
	err = m.Target().Commit(ctx, id)
	end(err)
	return err
}

// Abort implements rep.Directory.
func (m *Middleware) Abort(ctx context.Context, id lock.TxnID) error {
	end, err := m.begin(OpAbort)
	if err != nil {
		return err
	}
	err = m.Target().Abort(ctx, id)
	end(err)
	return err
}

// Status implements rep.Directory.
func (m *Middleware) Status(ctx context.Context, id lock.TxnID) (rep.TxnStatus, error) {
	end, err := m.begin(OpStatus)
	if err != nil {
		return 0, err
	}
	st, err := m.Target().Status(ctx, id)
	end(err)
	return st, err
}
