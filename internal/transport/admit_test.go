package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/rep"
)

// admitTestServer starts a server over a latency-injected rep and a
// client dialed to it, committing one key so lookups have something to
// find.
func admitTestServer(t *testing.T, latency time.Duration, opts ...ServerOption) (*Local, *Server, *Client) {
	t.Helper()
	r := rep.New("A")
	if err := r.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	l := NewLocal(r)
	l.SetLatency(latency)
	srv, err := Serve(l, "127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return l, srv, c
}

// TestDeadlineSiblingIsolation is the regression test for the shared
// coarse-deadline contexts the per-request deadline propagation
// replaced: a short-deadline call failing under load must not cancel a
// long-deadline sibling multiplexed on the same connection.
func TestDeadlineSiblingIsolation(t *testing.T) {
	_, _, c := admitTestServer(t, 60*time.Millisecond, WithPerConnConcurrency(1))

	var wg sync.WaitGroup
	var longErr, shortErr error
	var longRes rep.LookupResult

	wg.Add(1)
	go func() {
		defer wg.Done()
		lctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		longRes, longErr = c.Lookup(lctx, 2, keyspace.New("k"))
	}()
	// Let the long call occupy the single worker before the short one
	// queues behind it.
	time.Sleep(20 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		_, shortErr = c.Lookup(sctx, 3, keyspace.New("k"))
	}()
	wg.Wait()

	if shortErr == nil {
		t.Fatal("short-deadline call should have failed")
	}
	if longErr != nil {
		t.Fatalf("long-deadline sibling was cancelled: %v", longErr)
	}
	if !longRes.Found || longRes.Value != "v" {
		t.Fatalf("long-deadline sibling got wrong result: %+v", longRes)
	}
}

// TestExpiredFastReject: a request whose propagated deadline lapses
// while it queues behind a slow sibling is refused with ErrExpired at
// worker pickup instead of burning the worker, and the server counts
// it.
func TestExpiredFastReject(t *testing.T) {
	_, srv, c := admitTestServer(t, 80*time.Millisecond, WithPerConnConcurrency(1))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := c.Lookup(lctx, 2, keyspace.New("k")); err != nil {
			t.Errorf("long call: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// The short call's 20ms budget expires while it waits for the worker
	// (busy for another ~60ms). Its client gives up at its own deadline;
	// the server must notice the lapsed budget at pickup and refuse.
	sctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if _, err := c.Lookup(sctx, 3, keyspace.New("k")); err == nil {
		t.Error("short call should have failed")
	}
	cancel()
	wg.Wait()

	deadline := time.Now().Add(2 * time.Second)
	for srv.AdmissionStats().Expired == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server never counted the expired request: %+v", srv.AdmissionStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionSheds floods a deliberately tiny server far past its
// capacity and checks the overload contract: some requests are refused
// with ErrOverloaded (and counted), some still succeed (shedding is not
// an outage), and 2PC resolution ops are never shed even at full
// saturation.
func TestAdmissionSheds(t *testing.T) {
	_, srv, c := admitTestServer(t, 30*time.Millisecond,
		WithPerConnConcurrency(2),
		WithAdmission(time.Millisecond, 10*time.Millisecond),
		WithDispatchQueue(4),
	)

	const calls = 64
	var ok, overloaded, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, err := c.Lookup(cctx, 100, keyspace.New("k"))
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	// While the flood is in flight, 2PC resolution must keep being
	// served: Status is never sheddable, so it must come back with a
	// real answer (or a real directory error), never ErrOverloaded.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, err := c.Status(sctx, 999)
		cancel()
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrExpired) {
			t.Fatalf("2PC resolution op was shed: %v", err)
		}
	}
	wg.Wait()

	stats := srv.AdmissionStats()
	t.Logf("ok=%d overloaded=%d other=%d stats=%+v", ok.Load(), overloaded.Load(), other.Load(), stats)
	if overloaded.Load() == 0 {
		t.Fatal("flood past capacity shed nothing")
	}
	if ok.Load() == 0 {
		t.Fatal("shedding must not become an outage: no request succeeded")
	}
	if other.Load() != 0 {
		t.Fatalf("unexpected non-overload failures: %d", other.Load())
	}
	if stats.Shed == 0 {
		t.Fatalf("server counted no sheds: %+v", stats)
	}
}

// TestAdmitStateUnit drives the CoDel state machine directly.
func TestAdmitStateUnit(t *testing.T) {
	a := &admitState{enabled: true, target: time.Millisecond, interval: 10 * time.Millisecond}

	// Below-target sojourns keep the controller clear.
	a.pickup(time.Now())
	if a.shouldShed() {
		t.Fatal("clear controller should not shed")
	}
	// One above-target sojourn opens an episode but does not yet shed.
	a.pickup(time.Now().Add(-5 * time.Millisecond))
	if a.shouldShed() {
		t.Fatal("single above-target sojourn should not shed")
	}
	// Sustained above-target sojourns past the interval trip overload.
	a.mu.Lock()
	a.firstAbove = time.Now().Add(-20 * time.Millisecond)
	a.mu.Unlock()
	a.pickup(time.Now().Add(-5 * time.Millisecond))
	if !a.shouldShed() {
		t.Fatal("sustained queue delay should trip overload")
	}
	if a.snapshot().Episodes != 1 {
		t.Fatalf("episodes = %d, want 1", a.snapshot().Episodes)
	}
	// A below-target sojourn clears it again.
	a.pickup(time.Now())
	if a.shouldShed() {
		t.Fatal("recovered sojourn should clear overload")
	}

	// wontFinish: cold EWMA rejects nothing; warmed, it rejects budgets
	// under half the typical service time.
	if a.wontFinish(time.Now().Add(time.Nanosecond)) {
		t.Fatal("cold EWMA must not reject")
	}
	a.observeService(10 * time.Millisecond)
	if !a.wontFinish(time.Now().Add(time.Millisecond)) {
		t.Fatal("1ms budget against 10ms service time should be rejected")
	}
	if a.wontFinish(time.Now().Add(50 * time.Millisecond)) {
		t.Fatal("50ms budget against 10ms service time should be admitted")
	}

	// Disabled controller: everything is a no-op.
	var off admitState
	off.pickup(time.Now().Add(-time.Hour))
	if off.shouldShed() || off.wontFinish(time.Now()) {
		t.Fatal("disabled controller must admit everything")
	}
}
