package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
)

// TestEpochOverTCP exercises the v2 wire epoch end to end: a Status
// probe under WithEpoch fences the remote representative, after which
// stale-epoch operations fail across the wire with an error that still
// satisfies errors.Is(err, rep.ErrStaleEpoch), and current-epoch
// operations proceed.
func TestEpochOverTCP(t *testing.T) {
	for _, tc := range []struct {
		name string
		dial []DialOption
		srv  []ServerOption
	}{
		{name: "binary"},
		{name: "gob", dial: []DialOption{WithGobProtocol()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			r := rep.New("A")
			srv, err := Serve(r, "127.0.0.1:0", tc.srv...)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c, err := Dial(srv.Addr(), tc.dial...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Fence the representative at epoch 3 via the Status verb.
			if _, err := c.Status(rep.WithEpoch(ctx, 3), 0); err != nil {
				t.Fatalf("status probe: %v", err)
			}
			if got := r.Fence(); got != 3 {
				t.Fatalf("fence = %d after remote Status at epoch 3", got)
			}

			// A stale-epoch caller is rejected, identity intact.
			_, err = c.Lookup(rep.WithEpoch(ctx, 2), 1, keyspace.New("k"))
			if !errors.Is(err, rep.ErrStaleEpoch) {
				t.Fatalf("stale lookup = %v, want ErrStaleEpoch", err)
			}
			// So is a legacy caller with no epoch at all: mixing old and
			// new configurations must fail loudly, not silently.
			if _, err := c.Lookup(ctx, 1, keyspace.New("k")); !errors.Is(err, rep.ErrStaleEpoch) {
				t.Fatalf("unversioned lookup = %v, want ErrStaleEpoch", err)
			}

			// Current and newer epochs work (and adopt virally).
			if _, err := c.Lookup(rep.WithEpoch(ctx, 3), 2, keyspace.New("k")); err != nil {
				t.Fatalf("current-epoch lookup: %v", err)
			}
			if _, err := c.Lookup(rep.WithEpoch(ctx, 5), 3, keyspace.New("k")); err != nil {
				t.Fatalf("newer-epoch lookup: %v", err)
			}
			if got := r.Fence(); got != 5 {
				t.Fatalf("fence = %d after epoch-5 op", got)
			}
			// The bypass epoch is never fenced and never adopts.
			if _, err := c.Lookup(rep.WithEpoch(ctx, rep.EpochBypass), 4, keyspace.New("k")); err != nil {
				t.Fatalf("bypass lookup: %v", err)
			}
			if got := r.Fence(); got != 5 {
				t.Fatalf("fence = %d after bypass op, want 5", got)
			}
			for txn := 1; txn <= 4; txn++ {
				_ = r.Abort(ctx, lock.TxnID(txn))
			}
		})
	}
}

// TestRedialBackoffJitter is the regression test for redial jitter: the
// backoff grows exponentially to the cap, every delay is jittered into
// [wait/2, wait), and clients with different seeds produce different
// schedules (the anti-lockstep property), while a fixed seed reproduces
// its schedule exactly.
func TestRedialBackoffJitter(t *testing.T) {
	schedule := func(seed int64, n int) []time.Duration {
		c := &Client{rngSeed: seed, seeded: true}
		out := make([]time.Duration, n)
		c.mu.Lock()
		for i := range out {
			out[i] = c.advanceBackoff()
		}
		c.mu.Unlock()
		return out
	}

	a := schedule(1, 12)
	nominal := redialBase
	for i, d := range a {
		if d < nominal/2 || d >= nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", i, d, nominal/2, nominal)
		}
		if nominal < redialMax {
			nominal *= 2
			if nominal > redialMax {
				nominal = redialMax
			}
		}
	}
	if nominal != redialMax {
		t.Fatalf("backoff never reached the cap: %v", nominal)
	}

	if b := schedule(1, 12); !durationsEqual(a, b) {
		t.Error("same seed produced different schedules; jitter must be deterministic under a pinned seed")
	}
	diff := false
	for _, d := range [][]time.Duration{schedule(2, 12), schedule(3, 12)} {
		if !durationsEqual(a, d) {
			diff = true
		}
	}
	if !diff {
		t.Error("distinct seeds produced identical schedules; no jitter")
	}
}

func durationsEqual(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
