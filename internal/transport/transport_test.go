package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
)

var ctx = context.Background()

func TestErrorCodesRoundTrip(t *testing.T) {
	tests := []struct {
		name   string
		err    error
		target error
	}{
		{"die", fmt.Errorf("ctx: %w", lock.ErrDie), lock.ErrDie},
		{"sentinel", rep.ErrSentinel, rep.ErrSentinel},
		{"missing bound", rep.ErrMissingBound, rep.ErrMissingBound},
		{"bad range", rep.ErrBadRange, rep.ErrBadRange},
		{"no neighbor", rep.ErrNoNeighbor, rep.ErrNoNeighbor},
		{"unavailable", ErrUnavailable, ErrUnavailable},
		{"txn decided", rep.ErrTxnDecided, rep.ErrTxnDecided},
		{"unknown txn", rep.ErrUnknownTxn, rep.ErrUnknownTxn},
		// A rebuilding replica bounces reads with ErrRecovering; the suite
		// only routes around it if the identity survives the wire.
		{"recovering", fmt.Errorf("read: %w", rep.ErrRecovering), rep.ErrRecovering},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, msg := encodeError(tt.err)
			back := decodeError(c, msg)
			if !errors.Is(back, tt.target) {
				t.Errorf("decode(encode(%v)) = %v; lost identity", tt.err, back)
			}
		})
	}
	if c, _ := encodeError(nil); c != codeOK {
		t.Error("nil should encode as OK")
	}
	if decodeError(codeOK, "") != nil {
		t.Error("OK should decode as nil")
	}
	if back := decodeError(codeOther, "mystery"); back == nil || back.Error() != "mystery" {
		t.Errorf("other error should carry its message, got %v", back)
	}
}

func TestLocalPassThrough(t *testing.T) {
	r := rep.New("A")
	l := NewLocal(r)
	if l.Name() != "A" {
		t.Error("name should pass through")
	}
	if err := l.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	res, err := l.Lookup(ctx, 2, keyspace.New("k"))
	if err != nil || !res.Found || res.Value != "v" {
		t.Fatalf("lookup = %+v, %v", res, err)
	}
	nb, err := l.Predecessor(ctx, 2, keyspace.New("k"))
	if err != nil || !nb.Key.IsLow() {
		t.Fatalf("predecessor = %+v, %v", nb, err)
	}
	nb, err = l.Successor(ctx, 2, keyspace.New("k"))
	if err != nil || !nb.Key.IsHigh() {
		t.Fatalf("successor = %+v, %v", nb, err)
	}
	if err := l.Abort(ctx, 2); err != nil {
		t.Fatal(err)
	}
}

func TestLocalCrashRestart(t *testing.T) {
	l := NewLocal(rep.New("A"))
	l.Crash()
	if l.Up() {
		t.Error("crashed replica should report down")
	}
	if _, err := l.Lookup(ctx, 1, keyspace.New("k")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("call on crashed replica = %v, want ErrUnavailable", err)
	}
	if err := l.Insert(ctx, 1, keyspace.New("k"), 1, "v"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("insert on crashed replica = %v", err)
	}
	l.Restart()
	if !l.Up() {
		t.Error("restarted replica should report up")
	}
	if _, err := l.Lookup(ctx, 1, keyspace.New("k")); err != nil {
		t.Errorf("call after restart: %v", err)
	}
	l.Abort(ctx, 1)
}

func TestLocalLatencyAndContext(t *testing.T) {
	l := NewLocal(rep.New("A"))
	l.SetLatency(5 * time.Millisecond)
	start := time.Now()
	if _, err := l.Lookup(ctx, 1, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("latency not applied")
	}
	l.Abort(ctx, 1)

	l.SetLatency(time.Second)
	cctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := l.Lookup(cctx, 2, keyspace.New("k")); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("latency sleep should respect context, got %v", err)
	}
}

func newServerClient(t *testing.T) (*rep.Rep, *Server, *Client) {
	t.Helper()
	r := rep.New("netrep")
	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return r, srv, c
}

func TestTCPRecoveringIdentitySurvives(t *testing.T) {
	r, _, c := newServerClient(t)
	r.SetRecovering(true)
	if _, err := c.Lookup(ctx, 1, keyspace.New("k")); !errors.Is(err, rep.ErrRecovering) {
		t.Fatalf("lookup against a recovering rep = %v; want ErrRecovering so the suite routes around it", err)
	}
	r.SetRecovering(false)
	if _, err := c.Lookup(ctx, 2, keyspace.New("k")); err != nil {
		t.Fatalf("lookup after recovery = %v", err)
	}
}

func TestTCPFullOperationSurface(t *testing.T) {
	_, _, c := newServerClient(t)
	if c.Name() != "netrep" {
		t.Errorf("client name = %q", c.Name())
	}

	if err := c.Insert(ctx, 1, keyspace.New("b"), 1, "vb"); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(ctx, 1, keyspace.New("d"), 1, "vd"); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}

	res, err := c.Lookup(ctx, 2, keyspace.New("b"))
	if err != nil || !res.Found || res.Value != "vb" || res.Version != 1 {
		t.Fatalf("lookup = %+v, %v", res, err)
	}
	miss, err := c.Lookup(ctx, 2, keyspace.New("c"))
	if err != nil || miss.Found || miss.Version != 0 {
		t.Fatalf("gap lookup = %+v, %v", miss, err)
	}
	nb, err := c.Predecessor(ctx, 2, keyspace.New("d"))
	if err != nil || !nb.Key.Equal(keyspace.New("b")) {
		t.Fatalf("predecessor = %+v, %v", nb, err)
	}
	nb, err = c.Successor(ctx, 2, keyspace.New("b"))
	if err != nil || !nb.Key.Equal(keyspace.New("d")) {
		t.Fatalf("successor = %+v, %v", nb, err)
	}
	cres, err := c.Coalesce(ctx, 2, keyspace.New("b"), keyspace.New("d"), 7)
	if err != nil || len(cres.DeletedKeys) != 0 {
		t.Fatalf("coalesce = %+v, %v", cres, err)
	}
	if err := c.Abort(ctx, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSentinelKeysSurvive(t *testing.T) {
	_, _, c := newServerClient(t)
	res, err := c.Lookup(ctx, 1, keyspace.Low())
	if err != nil || !res.Found {
		t.Fatalf("LOW over TCP = %+v, %v", res, err)
	}
	nb, err := c.Successor(ctx, 1, keyspace.Low())
	if err != nil || !nb.Key.IsHigh() {
		t.Fatalf("Successor(LOW) over TCP = %+v, %v", nb, err)
	}
	c.Abort(ctx, 1)
}

func TestTCPErrorIdentity(t *testing.T) {
	_, _, c := newServerClient(t)
	if err := c.Insert(ctx, 1, keyspace.Low(), 1, "x"); !errors.Is(err, rep.ErrSentinel) {
		t.Errorf("sentinel insert over TCP = %v", err)
	}
	if _, err := c.Coalesce(ctx, 1, keyspace.New("x"), keyspace.New("y"), 1); !errors.Is(err, rep.ErrMissingBound) {
		t.Errorf("missing bound over TCP = %v", err)
	}
	c.Abort(ctx, 1)
	// Wait-die: txn 10 holds a modify lock, younger txn 20 must die.
	if err := c.Insert(ctx, 10, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(ctx, 20, keyspace.New("k"), 1, "v"); !errors.Is(err, lock.ErrDie) {
		t.Errorf("wait-die over TCP = %v", err)
	}
	c.Abort(ctx, 20)
	c.Abort(ctx, 10)
}

func TestTCPConcurrentClients(t *testing.T) {
	_, _, _ = ctx, 0, 0
	r := rep.New("shared")
	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				id := lock.TxnID(1000*i + j + 1)
				key := keyspace.New(fmt.Sprintf("c%d-k%d", i, j))
				if err := c.Insert(ctx, id, key, 1, "v"); err != nil {
					errs <- err
					return
				}
				if err := c.Commit(ctx, id); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := r.Len(); got != 2+clients*20 {
		t.Errorf("rep has %d entries, want %d", got, 2+clients*20)
	}
}

func TestDialFailureIsUnavailable(t *testing.T) {
	_, err := Dial("127.0.0.1:1") // nothing listens there
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("dial failure = %v, want ErrUnavailable", err)
	}
}

func TestClientSurvivesServerRestart(t *testing.T) {
	r := rep.New("bounce")
	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Lookup(ctx, 1, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	c.Abort(ctx, 1)
	srv.Close()
	// Calls fail while down...
	if _, err := c.Lookup(ctx, 2, keyspace.New("k")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("call to closed server = %v", err)
	}
	// ...and succeed again after the server returns on the same address.
	srv2, err := Serve(r, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := c.Lookup(ctx, 3, keyspace.New("k")); err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	c.Abort(ctx, 3)
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve(rep.New("x"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
