package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repdir/internal/obs"
)

// Frame buffer tuning. Coalesced frames are flushed once they pass
// batchFlushBytes; a single message may exceed it (up to maxFrameLen)
// and then travels in a frame of its own. Buffers above poolMaxCap are
// left to the garbage collector instead of being pooled, so one huge
// value cannot pin a huge buffer forever.
const (
	batchFlushBytes = 256 << 10
	poolMaxCap      = 1 << 20
)

// framePool recycles frame buffers across connections: writers build
// outgoing frames in them, readers land incoming frames in them.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func getFrameBuf() []byte { return (*framePool.Get().(*[]byte))[:0] }

func putFrameBuf(b []byte) {
	if cap(b) > poolMaxCap {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// WireStats counts the transport's frame traffic in both directions:
// frames, bytes, and messages, plus histograms of bytes per frame and
// messages per frame (the batch size). One WireStats is shared by all
// connections of a Client or Server, so the numbers describe the
// endpoint, not one socket. All methods are safe for concurrent use and
// nil-receiver safe.
type WireStats struct {
	framesSent atomic64
	framesRecv atomic64
	bytesSent  atomic64
	bytesRecv  atomic64
	msgsSent   atomic64
	msgsRecv   atomic64

	frameBytesTx obs.SizeHistogram
	frameBytesRx obs.SizeHistogram
	batchTx      obs.SizeHistogram
	batchRx      obs.SizeHistogram
}

// atomic64 is a tiny alias to keep the struct declaration readable.
type atomic64 = atomic.Uint64

// WireSnapshot is a point-in-time copy of one direction's counters.
type WireSnapshot struct {
	Frames, Bytes, Msgs uint64
	// FrameBytes is the distribution of frame payload sizes in bytes;
	// Batch the distribution of messages per frame.
	FrameBytes obs.SizeSnapshot
	Batch      obs.SizeSnapshot
}

// Sent returns the send-direction snapshot.
func (s *WireStats) Sent() WireSnapshot {
	if s == nil {
		return WireSnapshot{}
	}
	return WireSnapshot{
		Frames:     s.framesSent.Load(),
		Bytes:      s.bytesSent.Load(),
		Msgs:       s.msgsSent.Load(),
		FrameBytes: s.frameBytesTx.Snapshot(),
		Batch:      s.batchTx.Snapshot(),
	}
}

// Recv returns the receive-direction snapshot.
func (s *WireStats) Recv() WireSnapshot {
	if s == nil {
		return WireSnapshot{}
	}
	return WireSnapshot{
		Frames:     s.framesRecv.Load(),
		Bytes:      s.bytesRecv.Load(),
		Msgs:       s.msgsRecv.Load(),
		FrameBytes: s.frameBytesRx.Snapshot(),
		Batch:      s.batchRx.Snapshot(),
	}
}

func (s *WireStats) noteSent(frameBytes, msgs int) {
	if s == nil {
		return
	}
	s.framesSent.Add(1)
	s.bytesSent.Add(uint64(frameBytes))
	s.msgsSent.Add(uint64(msgs))
	s.frameBytesTx.Observe(uint64(frameBytes))
	s.batchTx.Observe(uint64(msgs))
}

func (s *WireStats) noteRecv(frameBytes, msgs int) {
	if s == nil {
		return
	}
	s.framesRecv.Add(1)
	s.bytesRecv.Add(uint64(frameBytes))
	s.msgsRecv.Add(uint64(msgs))
	s.frameBytesRx.Observe(uint64(frameBytes))
	s.batchRx.Observe(uint64(msgs))
}

// Register exposes the wire counters and histograms on reg under
// repdir_wire_* names, labeled by endpoint (e.g. "server", "client")
// and direction.
func (s *WireStats) Register(reg *obs.Registry, endpoint string) {
	if s == nil {
		return
	}
	RegisterWireStats(reg, map[string]*WireStats{endpoint: s})
}

// RegisterWireStats exposes several endpoints' wire counters and
// histograms under one set of repdir_wire_* families, one endpoint
// label value each. A registry panics on duplicate family names, so a
// process with multiple transports (say, one server per shard member it
// hosts) must register them together rather than calling Register once
// per transport.
func RegisterWireStats(reg *obs.Registry, stats map[string]*WireStats) {
	endpoints := make([]string, 0, len(stats))
	for ep, s := range stats {
		if s != nil {
			endpoints = append(endpoints, ep)
		}
	}
	sort.Strings(endpoints)
	reg.CounterVec("repdir_wire_frames_total",
		"Wire frames carried by the binary transport codec.",
		[]string{"endpoint", "dir"}, func() []obs.Sample {
			var out []obs.Sample
			for _, ep := range endpoints {
				s := stats[ep]
				out = append(out,
					obs.Sample{Labels: []string{ep, "tx"}, Value: float64(s.framesSent.Load())},
					obs.Sample{Labels: []string{ep, "rx"}, Value: float64(s.framesRecv.Load())})
			}
			return out
		})
	reg.CounterVec("repdir_wire_bytes_total",
		"Wire frame payload bytes carried by the binary transport codec.",
		[]string{"endpoint", "dir"}, func() []obs.Sample {
			var out []obs.Sample
			for _, ep := range endpoints {
				s := stats[ep]
				out = append(out,
					obs.Sample{Labels: []string{ep, "tx"}, Value: float64(s.bytesSent.Load())},
					obs.Sample{Labels: []string{ep, "rx"}, Value: float64(s.bytesRecv.Load())})
			}
			return out
		})
	reg.CounterVec("repdir_wire_messages_total",
		"Request/response messages carried by the binary transport codec.",
		[]string{"endpoint", "dir"}, func() []obs.Sample {
			var out []obs.Sample
			for _, ep := range endpoints {
				s := stats[ep]
				out = append(out,
					obs.Sample{Labels: []string{ep, "tx"}, Value: float64(s.msgsSent.Load())},
					obs.Sample{Labels: []string{ep, "rx"}, Value: float64(s.msgsRecv.Load())})
			}
			return out
		})
	reg.SizeHistogramVec("repdir_wire_frame_bytes",
		"Distribution of frame payload sizes in bytes.",
		[]string{"endpoint", "dir"}, func() []obs.SizeSample {
			var out []obs.SizeSample
			for _, ep := range endpoints {
				s := stats[ep]
				out = append(out,
					obs.SizeSample{Labels: []string{ep, "tx"}, Snap: s.frameBytesTx.Snapshot()},
					obs.SizeSample{Labels: []string{ep, "rx"}, Snap: s.frameBytesRx.Snapshot()})
			}
			return out
		})
	reg.SizeHistogramVec("repdir_wire_batch_size",
		"Distribution of messages coalesced per frame.",
		[]string{"endpoint", "dir"}, func() []obs.SizeSample {
			var out []obs.SizeSample
			for _, ep := range endpoints {
				s := stats[ep]
				out = append(out,
					obs.SizeSample{Labels: []string{ep, "tx"}, Snap: s.batchTx.Snapshot()},
					obs.SizeSample{Labels: []string{ep, "rx"}, Snap: s.batchRx.Snapshot()})
			}
			return out
		})
}

// frameWriter coalesces encoded messages into length-prefixed frames
// with group commit: the goroutine that finds the writer idle becomes
// the flusher and keeps writing until the pending buffer is empty, and
// messages enqueued while a write syscall is in flight ride out
// together in the next frame. Under a single caller every message
// flushes immediately (no added latency); under concurrent quorum
// rounds, frames batch up automatically. An optional window makes the
// flusher linger after the first message of a batch, trading a bounded
// latency bump for bigger frames.
//
// A failed write permanently breaks the writer: the error is recorded,
// onErr runs once (tearing down the connection and failing in-flight
// calls), and every later enqueue fails fast. Nothing is ever written
// after a failure, so a partial frame cannot be followed by bytes the
// peer would misparse.
type frameWriter struct {
	w      io.Writer
	window time.Duration
	// maxBatch caps messages per frame (0 = unbounded); used to pin
	// down the unbatched baseline in benchmarks.
	maxBatch int
	stats    *WireStats
	onErr    func(error)

	mu       sync.Mutex
	pending  []byte // encoded messages awaiting flush
	ends     []int  // message end offsets within pending
	flushing bool
	err      error
}

func newFrameWriter(w io.Writer, window time.Duration, maxBatch int, stats *WireStats, onErr func(error)) *frameWriter {
	return &frameWriter{w: w, window: window, maxBatch: maxBatch, stats: stats, onErr: onErr}
}

// enqueue appends one message (encoded by fn, which must append
// exactly one complete message) and flushes per the group-commit
// policy. It returns once the message is durably handed to the kernel
// or queued behind an active flusher that will carry it.
func (fw *frameWriter) enqueue(fn func([]byte) []byte) error {
	fw.mu.Lock()
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return err
	}
	if fw.pending == nil {
		fw.pending = getFrameBuf()
	}
	fw.pending = fn(fw.pending)
	fw.ends = append(fw.ends, len(fw.pending))
	if len(fw.ends) == 1 && len(fw.pending) > maxFrameLen {
		// A single message over the frame bound would poison the stream
		// at the receiver; fail just this call.
		fw.pending = fw.pending[:0]
		fw.ends = fw.ends[:0]
		fw.mu.Unlock()
		return fmt.Errorf("%w: message exceeds %d-byte frame bound", errWire, maxFrameLen)
	}
	if fw.flushing {
		// The active flusher will pick this message up; its write
		// outcome reaches this caller through the connection teardown
		// path if it fails.
		fw.mu.Unlock()
		return nil
	}
	fw.flushing = true
	fw.mu.Unlock()
	if fw.window > 0 {
		time.Sleep(fw.window)
	} else if fw.maxBatch != 1 {
		// Group-commit heuristic: yield once before writing, so
		// runnable peers (quorum-round goroutines mid-send, handlers
		// finishing together) get to enqueue into this frame. With an
		// empty run queue this costs ~100ns; under load it turns N
		// write syscalls into one.
		runtime.Gosched()
	}
	return fw.flushLoop()
}

// flushLoop drains pending as the current flush leader. It returns the
// first write error (also recorded for later enqueuers).
func (fw *frameWriter) flushLoop() error {
	var hdr [binary.MaxVarintLen64]byte
	for {
		fw.mu.Lock()
		if fw.err != nil {
			err := fw.err
			fw.flushing = false
			fw.mu.Unlock()
			return err
		}
		if len(fw.ends) == 0 {
			fw.flushing = false
			if fw.pending != nil {
				putFrameBuf(fw.pending)
				fw.pending = nil
			}
			fw.mu.Unlock()
			return nil
		}
		// Take a prefix of whole messages bounded by batchFlushBytes
		// and maxBatch; an oversized first message goes alone.
		take := len(fw.ends)
		if fw.maxBatch > 0 && take > fw.maxBatch {
			take = fw.maxBatch
		}
		for take > 1 && fw.ends[take-1] > batchFlushBytes {
			take--
		}
		cut := fw.ends[take-1]
		body := fw.pending[:cut]
		rest := fw.pending[cut:]
		var carry []byte
		if len(rest) > 0 {
			carry = getFrameBuf()
			carry = append(carry, rest...)
		}
		restEnds := fw.ends[take:]
		for i := range restEnds {
			restEnds[i] -= cut
		}
		ends := append([]int(nil), restEnds...)
		fw.pending, fw.ends = carry, ends
		fw.mu.Unlock()

		n := binary.PutUvarint(hdr[:], uint64(len(body)))
		bufs := net.Buffers{hdr[:n], body}
		_, err := bufs.WriteTo(fw.w)
		if err == nil {
			fw.stats.noteSent(cut, take)
		}
		putFrameBuf(body[:0])
		if err != nil {
			fw.fail(fmt.Errorf("transport: frame write: %w", err))
			return err
		}
	}
}

// fail records the first write error and runs the teardown hook once.
func (fw *frameWriter) fail(err error) {
	fw.mu.Lock()
	if fw.err != nil {
		fw.mu.Unlock()
		return
	}
	fw.err = err
	fw.flushing = false
	fw.pending = nil
	fw.ends = nil
	onErr := fw.onErr
	fw.mu.Unlock()
	if onErr != nil {
		onErr(err)
	}
}

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller owns the returned buffer and must putFrameBuf it when every
// message decoded from it has been copied out; it also records receive
// stats once it knows the message count.
func readFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxFrameLen {
		return nil, fmt.Errorf("%w: frame length %d out of range", errWire, n)
	}
	buf := getFrameBuf()
	if cap(buf) < int(n) {
		putFrameBuf(buf)
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(br, buf); err != nil {
		putFrameBuf(buf)
		return nil, err
	}
	return buf, nil
}
