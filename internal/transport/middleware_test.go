package transport

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
)

func TestMiddlewarePassThrough(t *testing.T) {
	m := Wrap(rep.New("A"), nil)
	if m.Name() != "A" {
		t.Error("name should pass through")
	}
	if err := m.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	if err := m.Prepare(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	res, err := m.Lookup(ctx, 2, keyspace.New("k"))
	if err != nil || !res.Found {
		t.Fatalf("lookup = %+v %v", res, err)
	}
	if _, err := m.Predecessor(ctx, 2, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Successor(ctx, 2, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredecessorBatch(ctx, 2, keyspace.New("k"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SuccessorBatch(ctx, 2, keyspace.New("k"), 2); err != nil {
		t.Fatal(err)
	}
	if st, err := m.Status(ctx, 1); err != nil || st != rep.StatusCommitted {
		t.Fatalf("status = %v %v", st, err)
	}
	m.Abort(ctx, 2)
}

func TestMiddlewareBeforeBlocksCalls(t *testing.T) {
	boom := errors.New("blocked")
	var mu sync.Mutex
	seen := map[Op]int{}
	m := Wrap(rep.New("A"), func(op Op) error {
		mu.Lock()
		seen[op]++
		mu.Unlock()
		if op.IsMutation() {
			return boom
		}
		return nil
	})
	if err := m.Insert(ctx, 1, keyspace.New("k"), 1, "v"); !errors.Is(err, boom) {
		t.Fatalf("insert should be blocked: %v", err)
	}
	if _, err := m.Coalesce(ctx, 1, keyspace.Low(), keyspace.High(), 1); !errors.Is(err, boom) {
		t.Fatalf("coalesce should be blocked: %v", err)
	}
	if _, err := m.Lookup(ctx, 1, keyspace.New("k")); err != nil {
		t.Fatalf("lookup should pass: %v", err)
	}
	m.Abort(ctx, 1)
	if seen[OpInsert] != 1 || seen[OpLookup] != 1 || seen[OpAbort] != 1 {
		t.Errorf("hook counts = %v", seen)
	}
}

func TestMiddlewareDynamicTarget(t *testing.T) {
	a, b := rep.New("A"), rep.New("B")
	current := a
	var mu sync.Mutex
	m := &Middleware{Target: func() rep.Directory {
		mu.Lock()
		defer mu.Unlock()
		return current
	}}
	if m.Name() != "A" {
		t.Error("should target A")
	}
	mu.Lock()
	current = b
	mu.Unlock()
	if m.Name() != "B" {
		t.Error("should target B after swap")
	}
}

func TestCallStatsCountsAndLatency(t *testing.T) {
	m, stats := WrapStats(rep.New("A"))
	if err := m.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lookup(ctx, 2, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	// Duplicate insert of a sentinel errors; the error must be counted.
	if err := m.Insert(ctx, 3, keyspace.Low(), 1, "x"); err == nil {
		t.Fatal("sentinel insert should fail")
	}
	m.Abort(ctx, 2)
	m.Abort(ctx, 3)

	ins := stats.Op(OpInsert)
	if ins.Calls != 2 || ins.Errors != 1 {
		t.Errorf("insert stats = %+v, want 2 calls / 1 error", ins)
	}
	lk := stats.Op(OpLookup)
	if lk.Calls != 1 || lk.Errors != 0 || lk.InFlight != 0 || lk.MaxInFlight < 1 {
		t.Errorf("lookup stats = %+v", lk)
	}
	if lk.Total <= 0 || lk.Avg() <= 0 {
		t.Errorf("lookup latency not recorded: %+v", lk)
	}
	if stats.InFlight() != 0 {
		t.Errorf("in-flight after quiesce = %d", stats.InFlight())
	}
	if got := stats.Snapshot()[OpCommit].Calls; got != 1 {
		t.Errorf("snapshot commit calls = %d", got)
	}
	// The latency histogram tracks the flat counters.
	if ins.Latency.Count != ins.Calls {
		t.Errorf("insert latency histogram count = %d, want %d", ins.Latency.Count, ins.Calls)
	}
	if lk.Latency.Count != 1 || lk.Latency.Sum != lk.Total {
		t.Errorf("lookup latency histogram = %+v, want count 1 sum %v", lk.Latency, lk.Total)
	}
	// Only operations that saw traffic render exposition samples, each
	// labeled member-then-op.
	samples := stats.LatencySamples("A")
	seen := map[string]bool{}
	for _, s := range samples {
		if len(s.Labels) != 2 || s.Labels[0] != "A" {
			t.Fatalf("sample labels = %v, want [A <op>]", s.Labels)
		}
		if s.Snap.Count == 0 {
			t.Errorf("empty histogram rendered for %v", s.Labels)
		}
		seen[s.Labels[1]] = true
	}
	if !seen[string(OpInsert)] || !seen[string(OpLookup)] {
		t.Errorf("latency samples missing ops: %v", seen)
	}
	if seen[string(OpStatus)] {
		t.Error("idle op rendered a latency sample")
	}
}

func TestCallStatsInFlightGauge(t *testing.T) {
	// A target that blocks until released, so several calls overlap.
	release := make(chan struct{})
	entered := make(chan struct{})
	target := blockingDir{Directory: rep.New("A"), entered: entered, release: release}
	stats := NewCallStats()
	m := &Middleware{Target: func() rep.Directory { return target }, Stats: stats}

	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Lookup(ctx, 0, keyspace.New("k"))
		}(i)
	}
	for i := 0; i < n; i++ {
		<-entered
	}
	if got := stats.Op(OpLookup).InFlight; got != n {
		t.Errorf("in-flight while blocked = %d, want %d", got, n)
	}
	close(release)
	wg.Wait()
	s := stats.Op(OpLookup)
	if s.InFlight != 0 || s.MaxInFlight != n || s.Calls != n {
		t.Errorf("final lookup stats = %+v", s)
	}
}

func TestCallStatsCountsBlocked(t *testing.T) {
	boom := errors.New("blocked")
	stats := NewCallStats()
	m := Wrap(rep.New("A"), func(op Op) error { return boom })
	m.Stats = stats
	if _, err := m.Lookup(ctx, 1, keyspace.New("k")); !errors.Is(err, boom) {
		t.Fatalf("lookup should be blocked: %v", err)
	}
	s := stats.Op(OpLookup)
	if s.Blocked != 1 || s.Calls != 0 {
		t.Errorf("blocked lookup stats = %+v", s)
	}
}

func TestMiddlewareAfterSeesOutcomes(t *testing.T) {
	boom := errors.New("blocked")
	var mu sync.Mutex
	type outcome struct {
		op  Op
		err error
	}
	var seen []outcome
	m := Wrap(rep.New("A"), func(op Op) error {
		if op == OpCoalesce {
			return boom
		}
		return nil
	})
	m.After = func(op Op, err error) {
		mu.Lock()
		seen = append(seen, outcome{op, err})
		mu.Unlock()
	}

	if err := m.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	// A failing call still completes — After must see its error.
	if err := m.Insert(ctx, 2, keyspace.Low(), 1, "x"); err == nil {
		t.Fatal("sentinel insert should fail")
	}
	// A call blocked by Before never reaches the target, so After must
	// NOT fire for it (the member was not actually probed).
	if _, err := m.Coalesce(ctx, 1, keyspace.Low(), keyspace.High(), 1); !errors.Is(err, boom) {
		t.Fatalf("coalesce should be blocked: %v", err)
	}
	m.Abort(ctx, 1)
	m.Abort(ctx, 2)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("after saw %d outcomes (%v), want 4", len(seen), seen)
	}
	if seen[0].op != OpInsert || seen[0].err != nil {
		t.Errorf("outcome 0 = %+v, want clean insert", seen[0])
	}
	if seen[1].op != OpInsert || seen[1].err == nil {
		t.Errorf("outcome 1 = %+v, want failed insert", seen[1])
	}
	for _, o := range seen {
		if o.op == OpCoalesce {
			t.Errorf("after fired for a Before-blocked call: %+v", o)
		}
	}
}

// countingReporter records reachability reports per member.
type countingReporter struct {
	mu               sync.Mutex
	success, failure map[string]int
}

func (r *countingReporter) ReportSuccess(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.success[member]++
}

func (r *countingReporter) ReportFailure(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failure[member]++
}

func TestWrapHealthReportsReachability(t *testing.T) {
	rec := &countingReporter{success: map[string]int{}, failure: map[string]int{}}
	local := NewLocal(rep.New("A"))
	m := WrapHealth(local, rec)

	// A completed call — even one returning a semantic error — proves
	// the member reachable.
	if err := m.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(ctx, 2, keyspace.Low(), 1, "x"); err == nil {
		t.Fatal("sentinel insert should fail")
	}
	m.Abort(ctx, 1)
	m.Abort(ctx, 2)

	// Unavailability is the one failure class.
	local.Crash()
	if _, err := m.Lookup(ctx, 3, keyspace.New("k")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("lookup on crashed member: %v", err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.success["A"] != 4 {
		t.Errorf("successes = %d, want 4 (semantic errors count as reachable)", rec.success["A"])
	}
	if rec.failure["A"] != 1 {
		t.Errorf("failures = %d, want 1", rec.failure["A"])
	}
}

// blockingDir delays Lookup until release closes, signalling entry.
type blockingDir struct {
	rep.Directory
	entered chan<- struct{}
	release <-chan struct{}
}

func (d blockingDir) Lookup(c context.Context, id lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	d.entered <- struct{}{}
	<-d.release
	return rep.LookupResult{}, nil
}

func TestOpClassification(t *testing.T) {
	inquiries := []Op{OpLookup, OpPredecessor, OpSuccessor, OpPredecessorBatch, OpSuccessorBatch}
	for _, op := range inquiries {
		if !op.IsInquiry() || op.IsMutation() {
			t.Errorf("%s misclassified", op)
		}
	}
	for _, op := range []Op{OpInsert, OpCoalesce} {
		if op.IsInquiry() || !op.IsMutation() {
			t.Errorf("%s misclassified", op)
		}
	}
	for _, op := range []Op{OpPrepare, OpCommit, OpAbort, OpStatus} {
		if op.IsInquiry() || op.IsMutation() {
			t.Errorf("%s misclassified", op)
		}
	}
}
