package transport

import (
	"errors"
	"sync"
	"testing"

	"repdir/internal/keyspace"
	"repdir/internal/rep"
)

func TestMiddlewarePassThrough(t *testing.T) {
	m := Wrap(rep.New("A"), nil)
	if m.Name() != "A" {
		t.Error("name should pass through")
	}
	if err := m.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
		t.Fatal(err)
	}
	if err := m.Prepare(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	res, err := m.Lookup(ctx, 2, keyspace.New("k"))
	if err != nil || !res.Found {
		t.Fatalf("lookup = %+v %v", res, err)
	}
	if _, err := m.Predecessor(ctx, 2, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Successor(ctx, 2, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredecessorBatch(ctx, 2, keyspace.New("k"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SuccessorBatch(ctx, 2, keyspace.New("k"), 2); err != nil {
		t.Fatal(err)
	}
	if st, err := m.Status(ctx, 1); err != nil || st != rep.StatusCommitted {
		t.Fatalf("status = %v %v", st, err)
	}
	m.Abort(ctx, 2)
}

func TestMiddlewareBeforeBlocksCalls(t *testing.T) {
	boom := errors.New("blocked")
	var mu sync.Mutex
	seen := map[Op]int{}
	m := Wrap(rep.New("A"), func(op Op) error {
		mu.Lock()
		seen[op]++
		mu.Unlock()
		if op.IsMutation() {
			return boom
		}
		return nil
	})
	if err := m.Insert(ctx, 1, keyspace.New("k"), 1, "v"); !errors.Is(err, boom) {
		t.Fatalf("insert should be blocked: %v", err)
	}
	if _, err := m.Coalesce(ctx, 1, keyspace.Low(), keyspace.High(), 1); !errors.Is(err, boom) {
		t.Fatalf("coalesce should be blocked: %v", err)
	}
	if _, err := m.Lookup(ctx, 1, keyspace.New("k")); err != nil {
		t.Fatalf("lookup should pass: %v", err)
	}
	m.Abort(ctx, 1)
	if seen[OpInsert] != 1 || seen[OpLookup] != 1 || seen[OpAbort] != 1 {
		t.Errorf("hook counts = %v", seen)
	}
}

func TestMiddlewareDynamicTarget(t *testing.T) {
	a, b := rep.New("A"), rep.New("B")
	current := a
	var mu sync.Mutex
	m := &Middleware{Target: func() rep.Directory {
		mu.Lock()
		defer mu.Unlock()
		return current
	}}
	if m.Name() != "A" {
		t.Error("should target A")
	}
	mu.Lock()
	current = b
	mu.Unlock()
	if m.Name() != "B" {
		t.Error("should target B after swap")
	}
}

func TestOpClassification(t *testing.T) {
	inquiries := []Op{OpLookup, OpPredecessor, OpSuccessor, OpPredecessorBatch, OpSuccessorBatch}
	for _, op := range inquiries {
		if !op.IsInquiry() || op.IsMutation() {
			t.Errorf("%s misclassified", op)
		}
	}
	for _, op := range []Op{OpInsert, OpCoalesce} {
		if op.IsInquiry() || !op.IsMutation() {
			t.Errorf("%s misclassified", op)
		}
	}
	for _, op := range []Op{OpPrepare, OpCommit, OpAbort, OpStatus} {
		if op.IsInquiry() || op.IsMutation() {
			t.Errorf("%s misclassified", op)
		}
	}
}
