package transport

import (
	"context"
	"sync"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// Local is an in-process connection to a representative with fault
// injection: the target can be crashed (calls fail with ErrUnavailable)
// and a fixed per-call latency can be added. Local is safe for concurrent
// use.
type Local struct {
	target rep.Directory

	mu      sync.Mutex
	down    bool
	latency time.Duration
}

var _ rep.Directory = (*Local)(nil)

// NewLocal wraps a representative.
func NewLocal(target rep.Directory) *Local {
	return &Local{target: target}
}

// Crash makes subsequent calls fail with ErrUnavailable.
func (l *Local) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = true
}

// Restart makes the representative reachable again. The underlying state
// is whatever the wrapped representative holds; pair with rep.Recover to
// model a crash that loses volatile state.
func (l *Local) Restart() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = false
}

// Replace swaps the wrapped representative — modeling a machine that
// came back from a failure with different local state, e.g. an empty
// representative after its storage was lost and archived.
func (l *Local) Replace(target rep.Directory) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.target = target
}

// dir returns the current wrapped representative.
func (l *Local) dir() rep.Directory {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.target
}

// SetLatency adds a fixed delay to every call.
func (l *Local) SetLatency(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.latency = d
}

// Up reports whether the representative is reachable.
func (l *Local) Up() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.down
}

// pre applies fault injection before a call.
func (l *Local) pre(ctx context.Context) error {
	l.mu.Lock()
	down, latency := l.down, l.latency
	l.mu.Unlock()
	if down {
		return ErrUnavailable
	}
	if latency > 0 {
		t := time.NewTimer(latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Name implements rep.Directory.
func (l *Local) Name() string { return l.dir().Name() }

// Lookup implements rep.Directory.
func (l *Local) Lookup(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	if err := l.pre(ctx); err != nil {
		return rep.LookupResult{}, err
	}
	return l.dir().Lookup(ctx, txn, key)
}

// Predecessor implements rep.Directory.
func (l *Local) Predecessor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	if err := l.pre(ctx); err != nil {
		return rep.NeighborResult{}, err
	}
	return l.dir().Predecessor(ctx, txn, key)
}

// Successor implements rep.Directory.
func (l *Local) Successor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	if err := l.pre(ctx); err != nil {
		return rep.NeighborResult{}, err
	}
	return l.dir().Successor(ctx, txn, key)
}

// PredecessorBatch implements rep.Directory.
func (l *Local) PredecessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	if err := l.pre(ctx); err != nil {
		return nil, err
	}
	return l.dir().PredecessorBatch(ctx, txn, key, max)
}

// SuccessorBatch implements rep.Directory.
func (l *Local) SuccessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	if err := l.pre(ctx); err != nil {
		return nil, err
	}
	return l.dir().SuccessorBatch(ctx, txn, key, max)
}

// Insert implements rep.Directory.
func (l *Local) Insert(ctx context.Context, txn lock.TxnID, key keyspace.Key, ver version.V, value string) error {
	if err := l.pre(ctx); err != nil {
		return err
	}
	return l.dir().Insert(ctx, txn, key, ver, value)
}

// Coalesce implements rep.Directory.
func (l *Local) Coalesce(ctx context.Context, txn lock.TxnID, lo, hi keyspace.Key, ver version.V) (rep.CoalesceResult, error) {
	if err := l.pre(ctx); err != nil {
		return rep.CoalesceResult{}, err
	}
	return l.dir().Coalesce(ctx, txn, lo, hi, ver)
}

// Prepare implements rep.Directory.
func (l *Local) Prepare(ctx context.Context, txn lock.TxnID) error {
	if err := l.pre(ctx); err != nil {
		return err
	}
	return l.dir().Prepare(ctx, txn)
}

// Commit implements rep.Directory.
func (l *Local) Commit(ctx context.Context, txn lock.TxnID) error {
	if err := l.pre(ctx); err != nil {
		return err
	}
	return l.dir().Commit(ctx, txn)
}

// Abort implements rep.Directory.
func (l *Local) Abort(ctx context.Context, txn lock.TxnID) error {
	if err := l.pre(ctx); err != nil {
		return err
	}
	return l.dir().Abort(ctx, txn)
}

// Status implements rep.Directory.
func (l *Local) Status(ctx context.Context, txn lock.TxnID) (rep.TxnStatus, error) {
	if err := l.pre(ctx); err != nil {
		return 0, err
	}
	return l.dir().Status(ctx, txn)
}
