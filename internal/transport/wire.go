package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repdir/internal/keyspace"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// Hand-rolled binary wire codec (protocol version 1).
//
// The gob codec the transport launched with spends ~30µs of CPU per
// message on reflection-driven encode/decode — two orders of magnitude
// above the wire's cost (EXPERIMENTS.md, "Multiplexed TCP transport").
// This codec replaces it with fixed one-byte op tags, varint integer
// fields, and length-prefixed byte strings, so a request encodes with a
// handful of appends into a pooled buffer and decodes with a handful of
// slice reads.
//
// Stream preamble (once per connection, client then server):
//
//	+------+---------+
//	| 0x00 | version |
//	+------+---------+
//
// 0x00 can never begin a gob stream (gob frames open with a non-zero
// message length: one byte 0x01..0x7F, or 0xF8..0xFF for multi-byte
// lengths), so a server can tell a binary client from a legacy gob
// client by its first byte, and a legacy server feeds the preamble to
// its gob decoder, errors, and closes — which a binary client takes as
// "negotiate down to gob" (see ensureConn).
//
// After the preamble, both directions carry frames:
//
//	+----------------+------------------------------+
//	| uvarint length | message, message, ...        |
//	+----------------+------------------------------+
//
// A frame holds one or more complete messages; coalescing concurrent
// quorum-round traffic into multi-message frames is the transport's
// batching mechanism (see frameWriter). Messages are self-delimiting,
// so the decoder simply reads until the frame is exhausted.
//
// Request message:
//
//	tag(1) id(uvarint) txn(uvarint) fields...
//
// Response message:
//
//	tag(1) id(uvarint) code(1) [msg(bytes) if code!=OK | fields if OK]
//
// Keys reuse the keyspace wire kinds (1=LOW, 2=normal+bytes, 3=HIGH);
// strings and byte fields are uvarint length + raw bytes. The exact
// per-op field layouts are pinned byte-for-byte by
// TestWireGoldenVectors; this encoding is an on-wire contract — extend
// it with new tags, never by reshaping existing ones.

const (
	// preambleByte opens a binary-codec stream; see above for why 0x00.
	preambleByte = 0x00
	// wireVersion is the codec version offered and echoed in preambles.
	// Both sides speak min(offered, supported), so mixed-version pairs
	// settle on the older layout.
	//
	// Version history:
	//	1: initial binary codec.
	//	2: request header gains the caller's configuration epoch
	//	   (uvarint after txn), for epoch fencing (internal/reconfig).
	//	   Response layouts are unchanged.
	//	3: request header gains the caller's remaining deadline budget
	//	   in microseconds (uvarint after epoch, 0 = no deadline), for
	//	   server-side deadline propagation and expired-work rejection.
	//	   Response layouts are unchanged.
	wireVersion = 3

	// maxFrameLen bounds a received frame before its buffer is
	// allocated, so a corrupt or hostile length prefix cannot balloon
	// memory. Single messages above the bound fail at the sender.
	maxFrameLen = 64 << 20
)

// errWire wraps all decode-side framing violations.
var errWire = errors.New("transport: wire codec")

// appendUvarint appends v in unsigned varint form.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendBytes appends a length-prefixed byte string.
func appendBytes(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendKey appends a key as its keyspace wire kind plus, for normal
// keys, the length-prefixed spelling.
func appendKey(b []byte, k keyspace.Key) []byte {
	switch {
	case k.IsLow():
		return append(b, 1)
	case k.IsHigh():
		return append(b, 3)
	default:
		b = append(b, 2)
		return appendBytes(b, k.Raw())
	}
}

// appendBool appends a bool as one byte.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendRequest appends one encoded request message to b, in the layout
// of the negotiated codec version. It never fails and performs no
// allocation beyond growing b.
func appendRequest(b []byte, req *request, ver byte) []byte {
	b = append(b, byte(req.Op))
	b = appendUvarint(b, req.ID)
	b = appendUvarint(b, req.Txn)
	if ver >= 2 {
		b = appendUvarint(b, req.Epoch)
	}
	if ver >= 3 {
		b = appendUvarint(b, req.Deadline)
	}
	switch req.Op {
	case opLookup, opPredecessor, opSuccessor:
		b = appendKey(b, req.Key)
	case opPredecessorBatch, opSuccessorBatch:
		b = appendKey(b, req.Key)
		b = appendUvarint(b, uint64(req.Count))
	case opInsert:
		b = appendKey(b, req.Key)
		b = appendUvarint(b, uint64(req.Version))
		b = appendBytes(b, req.Value)
	case opCoalesce:
		b = appendKey(b, req.Key)
		b = appendKey(b, req.Hi)
		b = appendUvarint(b, uint64(req.Version))
	case opPrepare, opCommit, opAbort, opStatus, opName:
		// No fields beyond the common header.
	}
	return b
}

// appendResponse appends one encoded response message to b.
func appendResponse(b []byte, resp *response) []byte {
	b = append(b, byte(resp.Op))
	b = appendUvarint(b, resp.ID)
	b = append(b, byte(resp.Code))
	if resp.Code != codeOK {
		return appendBytes(b, resp.Msg)
	}
	switch resp.Op {
	case opLookup:
		b = appendBool(b, resp.Found)
		b = appendUvarint(b, uint64(resp.Version))
		b = appendBytes(b, resp.Value)
	case opPredecessor, opSuccessor:
		b = appendKey(b, resp.Key)
		b = appendUvarint(b, uint64(resp.Version))
		b = appendBytes(b, resp.Value)
		b = appendUvarint(b, uint64(resp.GapVersion))
	case opPredecessorBatch, opSuccessorBatch:
		b = appendUvarint(b, uint64(len(resp.Neighbors)))
		for i := range resp.Neighbors {
			n := &resp.Neighbors[i]
			b = appendKey(b, n.Key)
			b = appendUvarint(b, uint64(n.Version))
			b = appendBytes(b, n.Value)
			b = appendUvarint(b, uint64(n.GapVersion))
		}
	case opCoalesce:
		b = appendUvarint(b, uint64(len(resp.DeletedKeys)))
		for _, k := range resp.DeletedKeys {
			b = appendKey(b, k)
		}
	case opStatus:
		b = appendUvarint(b, uint64(resp.TxnStatus))
	case opName:
		b = appendBytes(b, resp.Name)
	case opInsert, opPrepare, opCommit, opAbort:
		// No result fields.
	}
	return b
}

// wireReader decodes messages from one frame body. Byte-string reads
// are zero-copy slices into the frame; callers materialize strings only
// where an owned copy must outlive the frame buffer.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) remaining() int { return len(r.buf) - r.off }

func (r *wireReader) readByte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated message", errWire)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *wireReader) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", errWire)
	}
	r.off += n
	return v, nil
}

// readBytes returns a zero-copy slice into the frame buffer.
func (r *wireReader) readBytes() ([]byte, error) {
	n, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: byte string length %d exceeds frame", errWire, n)
	}
	s := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return s, nil
}

// readString materializes an owned string.
func (r *wireReader) readString() (string, error) {
	b, err := r.readBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// readKey decodes a key. Normal keys copy their spelling out of the
// frame (keyspace.Key holds a string, which must own its bytes).
func (r *wireReader) readKey() (keyspace.Key, error) {
	kind, err := r.readByte()
	if err != nil {
		return keyspace.Key{}, err
	}
	switch kind {
	case 1:
		return keyspace.Low(), nil
	case 3:
		return keyspace.High(), nil
	case 2:
		s, err := r.readString()
		if err != nil {
			return keyspace.Key{}, err
		}
		return keyspace.New(s), nil
	default:
		return keyspace.Key{}, fmt.Errorf("%w: unknown key kind %d", errWire, kind)
	}
}

func (r *wireReader) readBool() (bool, error) {
	b, err := r.readByte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bad bool byte %d", errWire, b)
	}
}

// readRequest decodes the next request message into *req, overwriting
// every field, in the layout of the negotiated codec version.
func (r *wireReader) readRequest(req *request, ver byte) error {
	tag, err := r.readByte()
	if err != nil {
		return err
	}
	*req = request{Op: op(tag)}
	if req.ID, err = r.readUvarint(); err != nil {
		return err
	}
	if req.Txn, err = r.readUvarint(); err != nil {
		return err
	}
	if ver >= 2 {
		if req.Epoch, err = r.readUvarint(); err != nil {
			return err
		}
	}
	if ver >= 3 {
		if req.Deadline, err = r.readUvarint(); err != nil {
			return err
		}
	}
	switch req.Op {
	case opLookup, opPredecessor, opSuccessor:
		req.Key, err = r.readKey()
	case opPredecessorBatch, opSuccessorBatch:
		if req.Key, err = r.readKey(); err != nil {
			return err
		}
		var n uint64
		if n, err = r.readUvarint(); err != nil {
			return err
		}
		if n > 1<<20 {
			return fmt.Errorf("%w: batch count %d", errWire, n)
		}
		req.Count = int(n)
	case opInsert:
		if req.Key, err = r.readKey(); err != nil {
			return err
		}
		var v uint64
		if v, err = r.readUvarint(); err != nil {
			return err
		}
		req.Version = version.V(v)
		req.Value, err = r.readString()
	case opCoalesce:
		if req.Key, err = r.readKey(); err != nil {
			return err
		}
		if req.Hi, err = r.readKey(); err != nil {
			return err
		}
		var v uint64
		if v, err = r.readUvarint(); err != nil {
			return err
		}
		req.Version = version.V(v)
	case opPrepare, opCommit, opAbort, opStatus, opName:
		// No fields.
	default:
		return fmt.Errorf("%w: unknown request tag %d", errWire, tag)
	}
	return err
}

// readResponse decodes the next response message into *resp,
// overwriting every field.
func (r *wireReader) readResponse(resp *response) error {
	tag, err := r.readByte()
	if err != nil {
		return err
	}
	*resp = response{Op: op(tag)}
	if resp.ID, err = r.readUvarint(); err != nil {
		return err
	}
	c, err := r.readByte()
	if err != nil {
		return err
	}
	resp.Code = code(c)
	if resp.Code != codeOK {
		resp.Msg, err = r.readString()
		return err
	}
	switch resp.Op {
	case opLookup:
		if resp.Found, err = r.readBool(); err != nil {
			return err
		}
		var v uint64
		if v, err = r.readUvarint(); err != nil {
			return err
		}
		resp.Version = version.V(v)
		resp.Value, err = r.readString()
	case opPredecessor, opSuccessor:
		if resp.Key, err = r.readKey(); err != nil {
			return err
		}
		var v uint64
		if v, err = r.readUvarint(); err != nil {
			return err
		}
		resp.Version = version.V(v)
		if resp.Value, err = r.readString(); err != nil {
			return err
		}
		if v, err = r.readUvarint(); err != nil {
			return err
		}
		resp.GapVersion = version.V(v)
	case opPredecessorBatch, opSuccessorBatch:
		var n uint64
		if n, err = r.readUvarint(); err != nil {
			return err
		}
		// Every neighbor needs at least 4 bytes (key kind, version,
		// empty value, gap version), so the count is bounded by the
		// frame itself.
		if n > uint64(r.remaining()) {
			return fmt.Errorf("%w: neighbor count %d exceeds frame", errWire, n)
		}
		if n > 0 {
			resp.Neighbors = make([]rep.NeighborResult, n)
		}
		for i := range resp.Neighbors {
			nb := &resp.Neighbors[i]
			if nb.Key, err = r.readKey(); err != nil {
				return err
			}
			var v uint64
			if v, err = r.readUvarint(); err != nil {
				return err
			}
			nb.Version = version.V(v)
			if nb.Value, err = r.readString(); err != nil {
				return err
			}
			if v, err = r.readUvarint(); err != nil {
				return err
			}
			nb.GapVersion = version.V(v)
		}
	case opCoalesce:
		var n uint64
		if n, err = r.readUvarint(); err != nil {
			return err
		}
		if n > uint64(r.remaining()) {
			return fmt.Errorf("%w: deleted-key count %d exceeds frame", errWire, n)
		}
		if n > 0 {
			resp.DeletedKeys = make([]keyspace.Key, n)
		}
		for i := range resp.DeletedKeys {
			if resp.DeletedKeys[i], err = r.readKey(); err != nil {
				return err
			}
		}
	case opStatus:
		var v uint64
		if v, err = r.readUvarint(); err != nil {
			return err
		}
		resp.TxnStatus = rep.TxnStatus(v)
	case opName:
		resp.Name, err = r.readString()
	case opInsert, opPrepare, opCommit, opAbort:
		// No result fields.
	default:
		return fmt.Errorf("%w: unknown response tag %d", errWire, tag)
	}
	return err
}
