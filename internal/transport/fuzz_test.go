package transport

import (
	"bytes"
	"reflect"
	"testing"

	"repdir/internal/keyspace"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// fuzzKey maps fuzz inputs onto the three key kinds.
func fuzzKey(kind uint8, s string) keyspace.Key {
	switch kind % 3 {
	case 0:
		return keyspace.Low()
	case 1:
		return keyspace.High()
	default:
		return keyspace.New(s)
	}
}

// FuzzCodecRoundTrip drives the binary codec from both ends: structured
// inputs must encode→decode to identical messages for every
// request/response variant, and the raw encoded bytes — plus arbitrary
// mutations of them the fuzzer discovers — must never panic the
// decoders or read out of bounds. The decoders see `raw` directly, so
// the fuzzer explores corrupt framings as well as valid ones.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(1), uint64(2), uint8(2), "key", uint8(0), "", uint64(3), "value", 4, uint8(0), "", []byte{})
	f.Add(uint8(6), uint64(9), uint64(8), uint8(2), "k", uint8(1), "hi", uint64(1<<40), "v", 0, uint8(2), "msg", []byte{0x01, 0x02})
	f.Add(uint8(12), uint64(0), uint64(0), uint8(0), "", uint8(2), "z", uint64(0), "", -1, uint8(9), "boom", []byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, tag uint8, id, txn uint64, keyKind uint8, keyS string,
		hiKind uint8, hiS string, ver uint64, value string, count int, codeByte uint8, msg string, raw []byte) {

		// Structured round trip: a valid request of every op, at both
		// codec versions (epoch rides the v2 header only).
		wver := byte(tag%2) + 1
		reqOp := op(tag%12) + 1
		req := request{ID: id, Op: reqOp, Txn: txn}
		if wver >= 2 {
			req.Epoch = id ^ txn
		}
		switch reqOp {
		case opLookup, opPredecessor, opSuccessor:
			req.Key = fuzzKey(keyKind, keyS)
		case opPredecessorBatch, opSuccessorBatch:
			req.Key = fuzzKey(keyKind, keyS)
			if count < 0 {
				count = -count
			}
			req.Count = count % (1 << 20)
		case opInsert:
			req.Key = fuzzKey(keyKind, keyS)
			req.Version = version.V(ver)
			req.Value = value
		case opCoalesce:
			req.Key = fuzzKey(keyKind, keyS)
			req.Hi = fuzzKey(hiKind, hiS)
			req.Version = version.V(ver)
		}
		encReq := appendRequest(nil, &req, wver)
		r := wireReader{buf: encReq}
		var gotReq request
		if err := r.readRequest(&gotReq, wver); err != nil {
			t.Fatalf("valid request %+v failed to decode: %v", req, err)
		}
		if !reflect.DeepEqual(gotReq, req) {
			t.Fatalf("request round trip:\n got  %+v\n want %+v", gotReq, req)
		}
		if r.remaining() != 0 {
			t.Fatalf("request decode left %d bytes", r.remaining())
		}

		// Structured round trip: a response for the same op, OK or error.
		resp := response{ID: id, Op: reqOp, Code: code(codeByte % 11)}
		if resp.Code != codeOK {
			resp.Msg = msg
		} else {
			switch reqOp {
			case opLookup:
				resp.Found = ver%2 == 0
				resp.Version = version.V(ver)
				resp.Value = value
			case opPredecessor, opSuccessor:
				resp.Key = fuzzKey(keyKind, keyS)
				resp.Version = version.V(ver)
				resp.Value = value
				resp.GapVersion = version.V(ver / 2)
			case opPredecessorBatch, opSuccessorBatch:
				n := int(ver%3) + 1
				for i := 0; i < n; i++ {
					resp.Neighbors = append(resp.Neighbors, rep.NeighborResult{
						Key: fuzzKey(keyKind+uint8(i), keyS), Version: version.V(ver),
						Value: value, GapVersion: version.V(uint64(i)),
					})
				}
			case opCoalesce:
				if len(keyS) > 0 {
					resp.DeletedKeys = []keyspace.Key{fuzzKey(2, keyS), keyspace.Low()}
				}
			case opStatus:
				resp.TxnStatus = rep.TxnStatus(ver % 4)
			case opName:
				resp.Name = value
			}
		}
		encResp := appendResponse(nil, &resp)
		r = wireReader{buf: encResp}
		var gotResp response
		if err := r.readResponse(&gotResp); err != nil {
			t.Fatalf("valid response %+v failed to decode: %v", resp, err)
		}
		if !reflect.DeepEqual(gotResp, resp) {
			t.Fatalf("response round trip:\n got  %+v\n want %+v", gotResp, resp)
		}

		// Re-encoding the decoded message must be byte-identical
		// (canonical encoding — no two spellings of one message).
		if re := appendRequest(nil, &gotReq, wver); !bytes.Equal(re, encReq) {
			t.Fatalf("request re-encode differs:\n got  %#v\n want %#v", re, encReq)
		}
		if re := appendResponse(nil, &gotResp); !bytes.Equal(re, encResp) {
			t.Fatalf("response re-encode differs:\n got  %#v\n want %#v", re, encResp)
		}

		// Adversarial half: arbitrary bytes must error or decode, never
		// panic. Decode repeatedly to walk multi-message framings.
		for _, buf := range [][]byte{raw, encReq, encResp} {
			for _, dv := range []byte{1, 2} {
				r := wireReader{buf: buf}
				for r.remaining() > 0 {
					var rq request
					if err := r.readRequest(&rq, dv); err != nil {
						break
					}
				}
			}
			r := wireReader{buf: buf}
			for r.remaining() > 0 {
				var rs response
				if err := r.readResponse(&rs); err != nil {
					break
				}
			}
		}
	})
}
