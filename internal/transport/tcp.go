package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// op is the wire operation code.
type op int

const (
	opLookup op = iota + 1
	opPredecessor
	opSuccessor
	opPredecessorBatch
	opSuccessorBatch
	opInsert
	opCoalesce
	opPrepare
	opCommit
	opAbort
	opStatus
	opName
)

// request is the single wire request shape.
type request struct {
	Op      op
	Txn     uint64
	Key     keyspace.Key
	Hi      keyspace.Key
	Version version.V
	Value   string
	Count   int
}

// response is the single wire response shape.
type response struct {
	Code        code
	Msg         string
	Found       bool
	Version     version.V
	Value       string
	Key         keyspace.Key
	GapVersion  version.V
	DeletedKeys []keyspace.Key
	Neighbors   []rep.NeighborResult
	TxnStatus   rep.TxnStatus
	Name        string
}

// Server exposes one representative over TCP. Each connection is served
// by its own goroutine; requests on a connection are processed in order.
type Server struct {
	dir rep.Directory
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// callTimeout caps how long one request (including its lock waits)
	// may run on the server.
	callTimeout time.Duration
}

// Serve starts a server for dir on addr (e.g. "127.0.0.1:0"). Close must
// be called to release the listener and connections.
func Serve(dir rep.Directory, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	s := &Server{
		dir:         dir,
		ln:          ln,
		conns:       make(map[net.Conn]struct{}),
		callTimeout: 30 * time.Second,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection, and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req request) response {
	ctx, cancel := context.WithTimeout(context.Background(), s.callTimeout)
	defer cancel()
	txn := lock.TxnID(req.Txn)
	var resp response
	var err error
	switch req.Op {
	case opLookup:
		var r rep.LookupResult
		r, err = s.dir.Lookup(ctx, txn, req.Key)
		resp.Found, resp.Version, resp.Value = r.Found, r.Version, r.Value
	case opPredecessor:
		var r rep.NeighborResult
		r, err = s.dir.Predecessor(ctx, txn, req.Key)
		resp.Key, resp.Version, resp.Value, resp.GapVersion = r.Key, r.Version, r.Value, r.GapVersion
	case opSuccessor:
		var r rep.NeighborResult
		r, err = s.dir.Successor(ctx, txn, req.Key)
		resp.Key, resp.Version, resp.Value, resp.GapVersion = r.Key, r.Version, r.Value, r.GapVersion
	case opPredecessorBatch:
		resp.Neighbors, err = s.dir.PredecessorBatch(ctx, txn, req.Key, req.Count)
	case opSuccessorBatch:
		resp.Neighbors, err = s.dir.SuccessorBatch(ctx, txn, req.Key, req.Count)
	case opInsert:
		err = s.dir.Insert(ctx, txn, req.Key, req.Version, req.Value)
	case opCoalesce:
		var r rep.CoalesceResult
		r, err = s.dir.Coalesce(ctx, txn, req.Key, req.Hi, req.Version)
		resp.DeletedKeys = r.DeletedKeys
	case opPrepare:
		err = s.dir.Prepare(ctx, txn)
	case opCommit:
		err = s.dir.Commit(ctx, txn)
	case opAbort:
		err = s.dir.Abort(ctx, txn)
	case opStatus:
		resp.TxnStatus, err = s.dir.Status(ctx, txn)
	case opName:
		resp.Name = s.dir.Name()
	default:
		err = fmt.Errorf("transport: unknown op %d", req.Op)
	}
	resp.Code, resp.Msg = encodeError(err)
	return resp
}

// Client is a TCP connection to a remote representative. It implements
// rep.Directory. Calls on one Client are serialized; use one Client per
// concurrent actor. A broken connection is redialed on the next call.
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	name string
}

var _ rep.Directory = (*Client)(nil)

// Dial connects to a representative server and fetches its name.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	resp, err := c.call(context.Background(), request{Op: opName})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.name = resp.Name
	c.mu.Unlock()
	return c, nil
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// call performs one request/response exchange, dialing if necessary.
func (c *Client) call(ctx context.Context, req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		d := net.Dialer{}
		conn, err := d.DialContext(ctx, "tcp", c.addr)
		if err != nil {
			return response{}, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, c.addr, err)
		}
		c.conn = conn
		c.enc = gob.NewEncoder(conn)
		c.dec = gob.NewDecoder(conn)
	}
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		c.reset()
		return response{}, fmt.Errorf("%w: send to %s: %v", ErrUnavailable, c.addr, err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.reset()
		return response{}, fmt.Errorf("%w: receive from %s: %v", ErrUnavailable, c.addr, err)
	}
	return resp, decodeError(resp.Code, resp.Msg)
}

// reset drops a broken connection so the next call redials. Callers hold
// c.mu.
func (c *Client) reset() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Name implements rep.Directory.
func (c *Client) Name() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.name != "" {
		return c.name
	}
	return c.addr
}

// Lookup implements rep.Directory.
func (c *Client) Lookup(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	resp, err := c.call(ctx, request{Op: opLookup, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.LookupResult{}, err
	}
	return rep.LookupResult{Found: resp.Found, Version: resp.Version, Value: resp.Value}, nil
}

// Predecessor implements rep.Directory.
func (c *Client) Predecessor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opPredecessor, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.NeighborResult{}, err
	}
	return rep.NeighborResult{Key: resp.Key, Version: resp.Version, Value: resp.Value, GapVersion: resp.GapVersion}, nil
}

// Successor implements rep.Directory.
func (c *Client) Successor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opSuccessor, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.NeighborResult{}, err
	}
	return rep.NeighborResult{Key: resp.Key, Version: resp.Version, Value: resp.Value, GapVersion: resp.GapVersion}, nil
}

// PredecessorBatch implements rep.Directory.
func (c *Client) PredecessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opPredecessorBatch, Txn: uint64(txn), Key: key, Count: max})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// SuccessorBatch implements rep.Directory.
func (c *Client) SuccessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opSuccessorBatch, Txn: uint64(txn), Key: key, Count: max})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// Insert implements rep.Directory.
func (c *Client) Insert(ctx context.Context, txn lock.TxnID, key keyspace.Key, ver version.V, value string) error {
	_, err := c.call(ctx, request{Op: opInsert, Txn: uint64(txn), Key: key, Version: ver, Value: value})
	return err
}

// Coalesce implements rep.Directory.
func (c *Client) Coalesce(ctx context.Context, txn lock.TxnID, lo, hi keyspace.Key, ver version.V) (rep.CoalesceResult, error) {
	resp, err := c.call(ctx, request{Op: opCoalesce, Txn: uint64(txn), Key: lo, Hi: hi, Version: ver})
	if err != nil {
		return rep.CoalesceResult{}, err
	}
	return rep.CoalesceResult{DeletedKeys: resp.DeletedKeys}, nil
}

// Prepare implements rep.Directory.
func (c *Client) Prepare(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opPrepare, Txn: uint64(txn)})
	return err
}

// Commit implements rep.Directory.
func (c *Client) Commit(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opCommit, Txn: uint64(txn)})
	return err
}

// Abort implements rep.Directory.
func (c *Client) Abort(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opAbort, Txn: uint64(txn)})
	return err
}

// Status implements rep.Directory.
func (c *Client) Status(ctx context.Context, txn lock.TxnID) (rep.TxnStatus, error) {
	resp, err := c.call(ctx, request{Op: opStatus, Txn: uint64(txn)})
	if err != nil {
		return 0, err
	}
	return resp.TxnStatus, nil
}
