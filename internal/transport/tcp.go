package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// op is the wire operation code.
type op int

const (
	opLookup op = iota + 1
	opPredecessor
	opSuccessor
	opPredecessorBatch
	opSuccessorBatch
	opInsert
	opCoalesce
	opPrepare
	opCommit
	opAbort
	opStatus
	opName
)

// request is the single wire request shape. ID matches the request to
// its response: the connection is multiplexed, so responses may return
// in any order.
type request struct {
	ID      uint64
	Op      op
	Txn     uint64
	Key     keyspace.Key
	Hi      keyspace.Key
	Version version.V
	Value   string
	Count   int
}

// response is the single wire response shape. ID echoes the request it
// answers.
type response struct {
	ID          uint64
	Code        code
	Msg         string
	Found       bool
	Version     version.V
	Value       string
	Key         keyspace.Key
	GapVersion  version.V
	DeletedKeys []keyspace.Key
	Neighbors   []rep.NeighborResult
	TxnStatus   rep.TxnStatus
	Name        string
}

// DefaultPerConnConcurrency bounds how many requests from one connection
// a server runs at once when WithPerConnConcurrency is not given.
const DefaultPerConnConcurrency = 32

// ServerOption configures Serve.
type ServerOption func(*Server)

// WithCallTimeout caps how long one request (including its lock waits)
// may run on the server. The default is 30 seconds.
func WithCallTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.callTimeout = d
		}
	}
}

// WithPerConnConcurrency bounds how many requests from one connection
// may be in flight at once on the server. When the bound is reached the
// connection's decode loop stops pulling new frames, applying
// backpressure to the client. n < 1 selects the default.
func WithPerConnConcurrency(n int) ServerOption {
	return func(s *Server) {
		if n >= 1 {
			s.perConn = n
		}
	}
}

// Server exposes one representative over TCP. Each connection has one
// decode loop, but every request is dispatched to its own goroutine
// (bounded by the per-connection concurrency limit), so a request stuck
// waiting for a lock does not head-of-line-block later requests on the
// same connection. Responses are serialized through a per-connection
// write mutex and matched to requests by ID.
type Server struct {
	dir rep.Directory
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// callTimeout caps how long one request (including its lock waits)
	// may run on the server.
	callTimeout time.Duration
	// perConn bounds concurrent dispatch per connection.
	perConn int
}

// Serve starts a server for dir on addr (e.g. "127.0.0.1:0"). Close must
// be called to release the listener and connections.
func Serve(dir rep.Directory, addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	s := &Server{
		dir:         dir,
		ln:          ln,
		conns:       make(map[net.Conn]struct{}),
		callTimeout: 30 * time.Second,
		perConn:     DefaultPerConnConcurrency,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection, and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var (
		wmu      sync.Mutex
		handlers sync.WaitGroup
	)
	// Outstanding handlers may still be mid-operation when the decode
	// loop exits; wait for them before tearing the connection down so
	// their (failing) writes never race the close.
	defer handlers.Wait()
	sem := make(chan struct{}, s.perConn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(req request) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp := s.handle(req)
			resp.ID = req.ID
			wmu.Lock()
			// An encode error means the connection broke; the decode
			// loop is failing in parallel, so just drop the response.
			_ = enc.Encode(resp)
			wmu.Unlock()
		}(req)
	}
}

func (s *Server) handle(req request) response {
	ctx, cancel := context.WithTimeout(context.Background(), s.callTimeout)
	defer cancel()
	txn := lock.TxnID(req.Txn)
	var resp response
	var err error
	switch req.Op {
	case opLookup:
		var r rep.LookupResult
		r, err = s.dir.Lookup(ctx, txn, req.Key)
		resp.Found, resp.Version, resp.Value = r.Found, r.Version, r.Value
	case opPredecessor:
		var r rep.NeighborResult
		r, err = s.dir.Predecessor(ctx, txn, req.Key)
		resp.Key, resp.Version, resp.Value, resp.GapVersion = r.Key, r.Version, r.Value, r.GapVersion
	case opSuccessor:
		var r rep.NeighborResult
		r, err = s.dir.Successor(ctx, txn, req.Key)
		resp.Key, resp.Version, resp.Value, resp.GapVersion = r.Key, r.Version, r.Value, r.GapVersion
	case opPredecessorBatch:
		resp.Neighbors, err = s.dir.PredecessorBatch(ctx, txn, req.Key, req.Count)
	case opSuccessorBatch:
		resp.Neighbors, err = s.dir.SuccessorBatch(ctx, txn, req.Key, req.Count)
	case opInsert:
		err = s.dir.Insert(ctx, txn, req.Key, req.Version, req.Value)
	case opCoalesce:
		var r rep.CoalesceResult
		r, err = s.dir.Coalesce(ctx, txn, req.Key, req.Hi, req.Version)
		resp.DeletedKeys = r.DeletedKeys
	case opPrepare:
		err = s.dir.Prepare(ctx, txn)
	case opCommit:
		err = s.dir.Commit(ctx, txn)
	case opAbort:
		err = s.dir.Abort(ctx, txn)
	case opStatus:
		resp.TxnStatus, err = s.dir.Status(ctx, txn)
	case opName:
		resp.Name = s.dir.Name()
	default:
		err = fmt.Errorf("transport: unknown op %d", req.Op)
	}
	resp.Code, resp.Msg = encodeError(err)
	return resp
}

// Redial backoff bounds: the first redial after a failed dial waits
// redialBase, doubling per consecutive failure up to redialMax.
const (
	redialBase = 10 * time.Millisecond
	redialMax  = time.Second
)

// callResult is what a waiting caller receives from the demux loop.
type callResult struct {
	resp response
	err  error
}

// clientConn is one live multiplexed connection: a shared gob encoder
// guarded by a write mutex, and an in-flight table mapping request IDs
// to the channels of the callers awaiting their responses. A single
// reader goroutine (readLoop) demultiplexes responses by ID.
type clientConn struct {
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex

	imu      sync.Mutex
	inflight map[uint64]chan callResult
	broken   bool
}

func newClientConn(conn net.Conn) *clientConn {
	return &clientConn{
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		inflight: make(map[uint64]chan callResult),
	}
}

// register claims an ID slot; it fails if the connection already broke.
func (cc *clientConn) register(id uint64, ch chan callResult) bool {
	cc.imu.Lock()
	defer cc.imu.Unlock()
	if cc.broken {
		return false
	}
	cc.inflight[id] = ch
	return true
}

// unregister abandons a call (context cancelled); a late response for
// the ID is discarded by the demux loop.
func (cc *clientConn) unregister(id uint64) {
	cc.imu.Lock()
	delete(cc.inflight, id)
	cc.imu.Unlock()
}

// complete routes one response to its waiting caller.
func (cc *clientConn) complete(resp response) {
	cc.imu.Lock()
	ch := cc.inflight[resp.ID]
	delete(cc.inflight, resp.ID)
	cc.imu.Unlock()
	if ch != nil {
		ch <- callResult{resp: resp}
	}
}

// fail marks the connection broken, closes it, and fails every in-flight
// call with err. Idempotent.
func (cc *clientConn) fail(err error) {
	cc.imu.Lock()
	if cc.broken {
		cc.imu.Unlock()
		return
	}
	cc.broken = true
	pending := cc.inflight
	cc.inflight = make(map[uint64]chan callResult)
	cc.imu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// isBroken reports whether fail has run.
func (cc *clientConn) isBroken() bool {
	cc.imu.Lock()
	defer cc.imu.Unlock()
	return cc.broken
}

// readLoop decodes responses and hands each to its caller until the
// connection dies, then fails whatever is still in flight.
func (cc *clientConn) readLoop(addr string) {
	dec := gob.NewDecoder(cc.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			cc.fail(fmt.Errorf("%w: receive from %s: %v", ErrUnavailable, addr, err))
			return
		}
		cc.complete(resp)
	}
}

// Client is a multiplexed TCP connection to a remote representative. It
// implements rep.Directory and is safe for concurrent use: any number of
// goroutines may have calls outstanding on the one connection at once.
// Requests carry IDs; a single reader goroutine demultiplexes responses
// to their callers, so a slow call never blocks an unrelated one. Each
// call honors its own context (deadline or cancellation) independently —
// an abandoned call's late response is simply discarded. A broken
// connection fails all in-flight calls with ErrUnavailable and is
// redialed on the next call, with exponential backoff between failed
// dial attempts.
type Client struct {
	addr   string
	nextID atomic.Uint64

	mu       sync.Mutex
	cc       *clientConn
	dialing  chan struct{}
	nextDial time.Time
	wait     time.Duration
	name     string
}

var _ rep.Directory = (*Client)(nil)

// Dial connects to a representative server and fetches its name.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr}
	resp, err := c.call(context.Background(), request{Op: opName})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.name = resp.Name
	c.mu.Unlock()
	return c, nil
}

// Close drops the connection, failing any in-flight calls with
// ErrUnavailable. The client remains usable: the next call redials.
func (c *Client) Close() error {
	c.mu.Lock()
	cc := c.cc
	c.cc = nil
	c.nextDial = time.Time{}
	c.wait = 0
	c.mu.Unlock()
	if cc != nil {
		cc.fail(fmt.Errorf("%w: %s: client closed", ErrUnavailable, c.addr))
	}
	return nil
}

// dropConn forgets cc if it is still the current connection, so the next
// call dials afresh.
func (c *Client) dropConn(cc *clientConn) {
	c.mu.Lock()
	if c.cc == cc {
		c.cc = nil
	}
	c.mu.Unlock()
}

// ensureConn returns a live connection, dialing when needed. Exactly one
// goroutine dials at a time; the others wait for its outcome (or their
// context). Consecutive dial failures back off exponentially, and a call
// arriving inside the backoff window waits it out (respecting ctx)
// rather than hammering the address.
func (c *Client) ensureConn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	for {
		if c.cc != nil && !c.cc.isBroken() {
			cc := c.cc
			c.mu.Unlock()
			return cc, nil
		}
		c.cc = nil
		if c.dialing != nil {
			done := c.dialing
			c.mu.Unlock()
			select {
			case <-done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			c.mu.Lock()
			continue
		}
		if wait := time.Until(c.nextDial); wait > 0 {
			c.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
			c.mu.Lock()
			continue
		}
		c.dialing = make(chan struct{})
		c.mu.Unlock()
		conn, err := (&net.Dialer{}).DialContext(ctx, "tcp", c.addr)
		c.mu.Lock()
		close(c.dialing)
		c.dialing = nil
		if err != nil {
			if c.wait == 0 {
				c.wait = redialBase
			} else if c.wait < redialMax {
				c.wait *= 2
				if c.wait > redialMax {
					c.wait = redialMax
				}
			}
			c.nextDial = time.Now().Add(c.wait)
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, c.addr, err)
		}
		c.wait = 0
		c.nextDial = time.Time{}
		cc := newClientConn(conn)
		c.cc = cc
		go func() {
			cc.readLoop(c.addr)
			c.dropConn(cc)
		}()
		c.mu.Unlock()
		return cc, nil
	}
}

// call performs one request/response exchange on the multiplexed
// connection. Many calls may be outstanding at once; each waits only for
// its own response or its own context.
func (c *Client) call(ctx context.Context, req request) (response, error) {
	for attempt := 0; ; attempt++ {
		cc, err := c.ensureConn(ctx)
		if err != nil {
			return response{}, err
		}
		req.ID = c.nextID.Add(1)
		ch := make(chan callResult, 1)
		if !cc.register(req.ID, ch) {
			// The connection broke between ensureConn and register;
			// retry once on a fresh dial, then give up.
			c.dropConn(cc)
			if attempt == 0 {
				continue
			}
			return response{}, fmt.Errorf("%w: %s: connection reset", ErrUnavailable, c.addr)
		}
		cc.wmu.Lock()
		err = cc.enc.Encode(req)
		cc.wmu.Unlock()
		if err != nil {
			// A failed write poisons the gob stream for every user of the
			// connection, not just this call.
			cc.fail(fmt.Errorf("%w: send to %s: %v", ErrUnavailable, c.addr, err))
			c.dropConn(cc)
			return response{}, fmt.Errorf("%w: send to %s: %v", ErrUnavailable, c.addr, err)
		}
		select {
		case r := <-ch:
			if r.err != nil {
				return response{}, r.err
			}
			return r.resp, decodeError(r.resp.Code, r.resp.Msg)
		case <-ctx.Done():
			cc.unregister(req.ID)
			return response{}, ctx.Err()
		}
	}
}

// Name implements rep.Directory.
func (c *Client) Name() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.name != "" {
		return c.name
	}
	return c.addr
}

// Lookup implements rep.Directory.
func (c *Client) Lookup(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	resp, err := c.call(ctx, request{Op: opLookup, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.LookupResult{}, err
	}
	return rep.LookupResult{Found: resp.Found, Version: resp.Version, Value: resp.Value}, nil
}

// Predecessor implements rep.Directory.
func (c *Client) Predecessor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opPredecessor, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.NeighborResult{}, err
	}
	return rep.NeighborResult{Key: resp.Key, Version: resp.Version, Value: resp.Value, GapVersion: resp.GapVersion}, nil
}

// Successor implements rep.Directory.
func (c *Client) Successor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opSuccessor, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.NeighborResult{}, err
	}
	return rep.NeighborResult{Key: resp.Key, Version: resp.Version, Value: resp.Value, GapVersion: resp.GapVersion}, nil
}

// PredecessorBatch implements rep.Directory.
func (c *Client) PredecessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opPredecessorBatch, Txn: uint64(txn), Key: key, Count: max})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// SuccessorBatch implements rep.Directory.
func (c *Client) SuccessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opSuccessorBatch, Txn: uint64(txn), Key: key, Count: max})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// Insert implements rep.Directory.
func (c *Client) Insert(ctx context.Context, txn lock.TxnID, key keyspace.Key, ver version.V, value string) error {
	_, err := c.call(ctx, request{Op: opInsert, Txn: uint64(txn), Key: key, Version: ver, Value: value})
	return err
}

// Coalesce implements rep.Directory.
func (c *Client) Coalesce(ctx context.Context, txn lock.TxnID, lo, hi keyspace.Key, ver version.V) (rep.CoalesceResult, error) {
	resp, err := c.call(ctx, request{Op: opCoalesce, Txn: uint64(txn), Key: lo, Hi: hi, Version: ver})
	if err != nil {
		return rep.CoalesceResult{}, err
	}
	return rep.CoalesceResult{DeletedKeys: resp.DeletedKeys}, nil
}

// Prepare implements rep.Directory.
func (c *Client) Prepare(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opPrepare, Txn: uint64(txn)})
	return err
}

// Commit implements rep.Directory.
func (c *Client) Commit(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opCommit, Txn: uint64(txn)})
	return err
}

// Abort implements rep.Directory.
func (c *Client) Abort(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opAbort, Txn: uint64(txn)})
	return err
}

// Status implements rep.Directory.
func (c *Client) Status(ctx context.Context, txn lock.TxnID) (rep.TxnStatus, error) {
	resp, err := c.call(ctx, request{Op: opStatus, Txn: uint64(txn)})
	if err != nil {
		return 0, err
	}
	return resp.TxnStatus, nil
}
