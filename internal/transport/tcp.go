package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// op is the wire operation code. The numeric values are the binary
// codec's one-byte message tags (see wire.go) — part of the on-wire
// contract; do not renumber.
type op int

const (
	opLookup op = iota + 1
	opPredecessor
	opSuccessor
	opPredecessorBatch
	opSuccessorBatch
	opInsert
	opCoalesce
	opPrepare
	opCommit
	opAbort
	opStatus
	opName
)

// Protocol names, as reported by Client.Protocol.
const (
	ProtoBinary = "binary"
	ProtoGob    = "gob"
)

// request is the single wire request shape. ID matches the request to
// its response: the connection is multiplexed, so responses may return
// in any order.
type request struct {
	ID    uint64
	Op    op
	Txn   uint64
	Epoch uint64
	// Deadline is the client's remaining context budget in microseconds
	// at send time (0 = no deadline). Carried by gob and v3-binary
	// peers; the server turns it into a per-request context and
	// fast-rejects work it cannot finish in time.
	Deadline uint64
	Key      keyspace.Key
	Hi       keyspace.Key
	Version  version.V
	Value    string
	Count    int

	// Server-side bookkeeping, never on the wire (gob skips unexported
	// fields; the binary codec is explicit): when the request was
	// decoded, and the absolute deadline its budget implies.
	arrived time.Time
	expires time.Time
}

// response is the single wire response shape. ID echoes the request it
// answers; Op echoes the request op so the binary decoder knows which
// result fields follow (gob carries field names and ignores it).
type response struct {
	ID          uint64
	Op          op
	Code        code
	Msg         string
	Found       bool
	Version     version.V
	Value       string
	Key         keyspace.Key
	GapVersion  version.V
	DeletedKeys []keyspace.Key
	Neighbors   []rep.NeighborResult
	TxnStatus   rep.TxnStatus
	Name        string
}

// DefaultPerConnConcurrency bounds how many requests from one connection
// a server runs at once when WithPerConnConcurrency is not given.
const DefaultPerConnConcurrency = 32

// negotiateTimeout bounds the preamble exchange after a dial, so a
// server that accepts but never answers cannot hang the caller beyond
// its context.
const negotiateTimeout = 10 * time.Second

// ServerOption configures Serve.
type ServerOption func(*Server)

// WithCallTimeout caps how long one request (including its lock waits)
// may run on the server. The default is 30 seconds.
func WithCallTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.callTimeout = d
		}
	}
}

// WithPerConnConcurrency bounds how many requests from one connection
// may be in flight at once on the server. When the bound is reached the
// connection's decode loop stops pulling new frames, applying
// backpressure to the client. n < 1 selects the default.
func WithPerConnConcurrency(n int) ServerOption {
	return func(s *Server) {
		if n >= 1 {
			s.perConn = n
		}
	}
}

// WithAdmission enables CoDel-style overload shedding on the server's
// dispatch path (see admit.go): when the measured queue delay stays
// above target for a full interval, newly arriving requests are
// rejected with ErrOverloaded until the delay recovers — except
// two-phase-commit resolution, which is always served so shedding can
// never wedge an in-flight transaction. Zero durations select
// DefaultAdmitTarget / DefaultAdmitInterval. Enabling admission also
// buffers the per-connection dispatch queue (WithDispatchQueue) so
// queue delay is measurable.
func WithAdmission(target, interval time.Duration) ServerOption {
	return func(s *Server) {
		s.admit.enabled = true
		s.admit.target = DefaultAdmitTarget
		s.admit.interval = DefaultAdmitInterval
		if target > 0 {
			s.admit.target = target
		}
		if interval > 0 {
			s.admit.interval = interval
		}
	}
}

// WithDispatchQueue buffers each connection's dispatch queue with n
// slots beyond the running workers. The default 0 keeps the legacy
// unbuffered handoff (decode blocks whenever all workers are busy);
// admission control defaults it to 16x the per-connection concurrency.
// Under admission the queue's standing delay is bounded by the CoDel
// controller, not by the queue's length, so the queue should be sized
// for the worst arrival burst a client may legitimately multiplex onto
// the connection — a queue that overflows on an honest burst sheds work
// a healthy server could have drained well inside the delay target.
func WithDispatchQueue(n int) ServerOption {
	return func(s *Server) {
		if n >= 0 {
			s.queueDepth = n
			s.queueSet = true
		}
	}
}

// WithGobOnly makes the server behave like a pre-codec build: every
// connection is served with gob and a binary preamble is rejected (the
// gob decoder chokes on it and the connection closes), which is exactly
// what a new client negotiating against an old server experiences. Used
// by the mixed-version tests and available for staged rollbacks.
func WithGobOnly() ServerOption {
	return func(s *Server) { s.gobOnly = true }
}

// Server exposes one representative over TCP. Each connection has one
// decode loop, but every request is dispatched to its own goroutine
// (bounded by the per-connection concurrency limit), so a request stuck
// waiting for a lock does not head-of-line-block later requests on the
// same connection. Responses are matched to requests by ID; on the
// binary protocol they group-commit through a frameWriter, on gob they
// serialize through a per-connection write mutex.
//
// Protocol selection is per connection: a connection whose first byte
// is the binary preamble speaks the binary codec, anything else is
// served with gob (see wire.go for the preamble rationale).
type Server struct {
	dir rep.Directory
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// callTimeout caps how long one request (including its lock waits)
	// may run on the server.
	callTimeout time.Duration
	// perConn bounds concurrent dispatch per connection.
	perConn int
	// queueDepth buffers the per-connection dispatch queue (0 =
	// unbuffered handoff); queueSet records an explicit option so
	// admission can supply its own default.
	queueDepth int
	queueSet   bool
	// admit is the overload-shedding controller (disabled by default).
	admit admitState
	// gobOnly disables the binary codec (legacy-server mode).
	gobOnly bool
	// stats aggregates binary-codec frame traffic across connections.
	stats WireStats

	// Shared per-op deadline context, refreshed coarsely (see opCtx).
	ctxMu     sync.Mutex
	opCtxVal  context.Context
	opCtxStop context.CancelFunc
	opCtxBorn time.Time
}

// Serve starts a server for dir on addr (e.g. "127.0.0.1:0"). Close must
// be called to release the listener and connections.
func Serve(dir rep.Directory, addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	s := &Server{
		dir:         dir,
		ln:          ln,
		conns:       make(map[net.Conn]struct{}),
		callTimeout: 30 * time.Second,
		perConn:     DefaultPerConnConcurrency,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.admit.enabled && !s.queueSet {
		s.queueDepth = 16 * s.perConn
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// WireStats returns the server's binary-codec traffic counters. Gob
// connections do not contribute.
func (s *Server) WireStats() *WireStats { return &s.stats }

// AdmissionStats returns the admission controller's counters (all zero
// unless WithAdmission, except Expired, which hard deadline rejection
// feeds regardless).
func (s *Server) AdmissionStats() AdmissionStats { return s.admit.snapshot() }

// Close stops accepting, closes every connection, and waits for handler
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	s.ctxMu.Lock()
	if s.opCtxStop != nil {
		s.opCtxStop()
		s.opCtxVal, s.opCtxStop = nil, nil
	}
	s.ctxMu.Unlock()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn sniffs the protocol from the connection's first byte and
// runs the matching serve loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	if !s.gobOnly {
		first, err := br.Peek(1)
		if err != nil {
			return
		}
		if first[0] == preambleByte {
			s.serveConnBinary(conn, br)
			return
		}
	}
	s.serveConnGob(conn, br)
}

// serveConnBinary answers the preamble and then decodes multi-message
// frames, dispatching each request to its own bounded goroutine.
// Responses group-commit through a frameWriter, so replies to a batch
// of concurrent requests coalesce into few frames.
func (s *Server) serveConnBinary(conn net.Conn, br *bufio.Reader) {
	var pre [2]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre[1] == 0 {
		return
	}
	ver := pre[1]
	if ver > wireVersion {
		ver = wireVersion
	}
	if _, err := conn.Write([]byte{preambleByte, ver}); err != nil {
		return
	}
	// A failed response write leaves the stream corrupt mid-frame; close
	// the connection so the client's in-flight calls fail fast instead
	// of waiting out their timeouts.
	fw := newFrameWriter(conn, 0, 0, &s.stats, func(error) { conn.Close() })
	// Long-lived worker pool: a channel handoff costs a fraction of a
	// goroutine spawn, and the pool size is the same per-connection
	// concurrency bound the sem used to enforce — when every worker is
	// busy (and the dispatch queue, if buffered, is full) the decode
	// loop blocks, applying backpressure to the client.
	work := make(chan request, s.queueDepth)
	var handlers sync.WaitGroup
	// Outstanding handlers may still be mid-operation when the decode
	// loop exits; wait for them before tearing the connection down so
	// their (failing) writes never race the close.
	defer handlers.Wait()
	defer close(work)
	reply := func(resp response) {
		_ = fw.enqueue(func(b []byte) []byte { return appendResponse(b, &resp) })
	}
	for i := 0; i < s.perConn; i++ {
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			for req := range work {
				reply(s.dispatch(&req))
			}
		}()
	}
	for {
		buf, err := readFrame(br)
		if err != nil {
			return
		}
		r := wireReader{buf: buf}
		msgs := 0
		for r.remaining() > 0 {
			var req request
			if err := r.readRequest(&req, ver); err != nil {
				putFrameBuf(buf)
				return
			}
			msgs++
			s.offer(req, work, reply)
		}
		s.stats.noteRecv(len(buf), msgs)
		putFrameBuf(buf)
	}
}

// serveConnGob is the legacy per-message gob loop.
func (s *Server) serveConnGob(conn net.Conn, br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	work := make(chan request, s.queueDepth)
	var handlers sync.WaitGroup
	defer handlers.Wait()
	defer close(work)
	reply := func(resp response) {
		wmu.Lock()
		err := enc.Encode(resp)
		wmu.Unlock()
		if err != nil {
			// A failed encode poisons the shared gob stream: every
			// later response would hit a corrupt encoder state and
			// the client would hang until its call timeouts. Close
			// the connection so in-flight calls fail fast.
			conn.Close()
		}
	}
	for i := 0; i < s.perConn; i++ {
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			for req := range work {
				reply(s.dispatch(&req))
			}
		}()
	}
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.offer(req, work, reply)
	}
}

// offer routes one decoded request toward the worker pool. The request
// is stamped with its arrival time and, when it carries a propagated
// deadline budget, the absolute instant that budget expires. Under
// admission-control overload, sheddable requests are refused
// immediately with ErrOverloaded — when the controller has tripped AND
// the queue's expected drain delay exceeds the target (overBacklog), or
// unconditionally when the queue is full (a full queue with the
// controller enabled means sojourn is about to blow far past target
// anyway; rejecting now is strictly kinder than queueing then
// rejecting). Requiring backlog alongside the tripped controller keeps
// shedding proportional: admitted work keeps flowing at the drain rate,
// the queue settles at roughly one target's worth of delay, and a
// below-target pickup can clear the episode — an all-arrivals shed
// would turn every sustained overload into a full outage that only ends
// when the offered load does. Two-phase-commit resolution is never
// shed: it blocks on the queue like the legacy path, so lock-holding
// transactions always drain.
func (s *Server) offer(req request, work chan<- request, reply func(response)) {
	req.arrived = time.Now()
	if req.Deadline > 0 {
		req.expires = req.arrived.Add(time.Duration(req.Deadline) * time.Microsecond)
	}
	if sheddable(req.Op) && s.admit.enabled {
		if s.admit.shouldShed() && s.admit.overBacklog(len(work), s.perConn) {
			s.admit.shed.Add(1)
			reply(errorResponse(&req, ErrOverloaded))
			return
		}
		select {
		case work <- req:
		default:
			s.admit.shed.Add(1)
			reply(errorResponse(&req, ErrOverloaded))
		}
		return
	}
	work <- req
}

// dispatch is the worker-side half of admission: report the request's
// queue sojourn, refuse work whose propagated deadline has already
// passed (or provably cannot be met given typical service time), and
// otherwise run the handler, feeding its service time back into the
// controller's estimate.
func (s *Server) dispatch(req *request) response {
	s.admit.pickup(req.arrived)
	if sheddable(req.Op) && !req.expires.IsZero() {
		if time.Now().After(req.expires) || s.admit.wontFinish(req.expires) {
			s.admit.expired.Add(1)
			return errorResponse(req, ErrExpired)
		}
	}
	start := time.Now()
	resp := s.handle(req)
	s.admit.observeService(time.Since(start))
	s.admit.admitted.Add(1)
	return resp
}

// errorResponse builds the reply for a request refused before its
// handler ran.
func errorResponse(req *request, err error) response {
	resp := response{ID: req.ID, Op: req.Op}
	resp.Code, resp.Msg = encodeError(err)
	return resp
}

// opCtx returns a context carrying the call-timeout deadline. One
// timer context is shared by every request arriving within a refresh
// interval (callTimeout/8, capped at 1s), so the steady-state cost per
// request is a mutex and a clock read instead of a timer create/stop
// pair — which profiles as ~10% of a saturated server's CPU. The
// tradeoff: a request may observe a deadline up to one interval shorter
// than callTimeout. Superseded contexts are not cancelled (requests may
// still hold them); their timers lapse at their own deadlines.
func (s *Server) opCtx() context.Context {
	refresh := s.callTimeout / 8
	if refresh > time.Second {
		refresh = time.Second
	}
	now := time.Now()
	s.ctxMu.Lock()
	if s.opCtxVal == nil || now.Sub(s.opCtxBorn) > refresh {
		s.opCtxVal, s.opCtxStop = context.WithTimeout(context.Background(), s.callTimeout)
		s.opCtxBorn = now
	}
	ctx := s.opCtxVal
	s.ctxMu.Unlock()
	return ctx
}

func (s *Server) handle(req *request) response {
	var ctx context.Context
	if !req.expires.IsZero() {
		// The request carries its client's own deadline: honor it
		// per-request instead of the shared coarse context, capped by the
		// server's call timeout so a client claiming an hour of budget
		// cannot pin a worker that long. This is what keeps one
		// short-deadline call from cancelling a long-deadline sibling on
		// the same connection.
		limit := req.expires
		if hard := req.arrived.Add(s.callTimeout); hard.Before(limit) {
			limit = hard
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(context.Background(), limit)
		defer cancel()
	} else {
		// No propagated deadline (legacy peer, or client context without
		// one): the shared coarse call-timeout context.
		ctx = s.opCtx()
	}
	// Restore the caller's configuration epoch so the representative can
	// fence stale-epoch operations (a v1 or gob peer sends no epoch,
	// which the rep treats as a legacy unversioned caller).
	if req.Epoch != 0 {
		ctx = rep.WithEpoch(ctx, req.Epoch)
	}
	txn := lock.TxnID(req.Txn)
	var resp response
	var err error
	switch req.Op {
	case opLookup:
		var r rep.LookupResult
		r, err = s.dir.Lookup(ctx, txn, req.Key)
		resp.Found, resp.Version, resp.Value = r.Found, r.Version, r.Value
	case opPredecessor:
		var r rep.NeighborResult
		r, err = s.dir.Predecessor(ctx, txn, req.Key)
		resp.Key, resp.Version, resp.Value, resp.GapVersion = r.Key, r.Version, r.Value, r.GapVersion
	case opSuccessor:
		var r rep.NeighborResult
		r, err = s.dir.Successor(ctx, txn, req.Key)
		resp.Key, resp.Version, resp.Value, resp.GapVersion = r.Key, r.Version, r.Value, r.GapVersion
	case opPredecessorBatch:
		resp.Neighbors, err = s.dir.PredecessorBatch(ctx, txn, req.Key, req.Count)
	case opSuccessorBatch:
		resp.Neighbors, err = s.dir.SuccessorBatch(ctx, txn, req.Key, req.Count)
	case opInsert:
		err = s.dir.Insert(ctx, txn, req.Key, req.Version, req.Value)
	case opCoalesce:
		var r rep.CoalesceResult
		r, err = s.dir.Coalesce(ctx, txn, req.Key, req.Hi, req.Version)
		resp.DeletedKeys = r.DeletedKeys
	case opPrepare:
		err = s.dir.Prepare(ctx, txn)
	case opCommit:
		err = s.dir.Commit(ctx, txn)
	case opAbort:
		err = s.dir.Abort(ctx, txn)
	case opStatus:
		resp.TxnStatus, err = s.dir.Status(ctx, txn)
	case opName:
		resp.Name = s.dir.Name()
	default:
		err = fmt.Errorf("transport: unknown op %d", req.Op)
	}
	resp.ID = req.ID
	resp.Op = req.Op
	resp.Code, resp.Msg = encodeError(err)
	return resp
}

// Redial backoff bounds: the first redial after a failed dial waits on
// the order of redialBase, doubling per consecutive failure up to
// redialMax. Each delay is jittered to [1/2, 1) of its nominal value so
// a fleet of clients that lost the same server redials spread out
// instead of in lockstep (every client hammering the recovering server
// at the same instants, losing together, and staying synchronized —
// the classic retry-storm resonance).
const (
	redialBase = 10 * time.Millisecond
	redialMax  = time.Second
)

// callResult is what a waiting caller receives from the demux loop.
type callResult struct {
	resp response
	err  error
}

// clientConn is one live multiplexed connection speaking one protocol:
// binary (requests group-commit through a frameWriter) or gob (a shared
// encoder guarded by a write mutex). Either way, an in-flight table maps
// request IDs to the channels of the callers awaiting their responses,
// and a single reader goroutine (readLoop) demultiplexes responses by
// ID.
type clientConn struct {
	conn  net.Conn
	proto string
	// ver is the negotiated binary codec version (0 on gob).
	ver byte

	// Binary protocol: the group-commit frame writer.
	fw *frameWriter
	// Gob protocol: shared encoder behind a write mutex.
	enc *gob.Encoder
	wmu sync.Mutex

	stats *WireStats

	imu      sync.Mutex
	inflight map[uint64]chan callResult
	broken   bool
}

func newClientConn(conn net.Conn, proto string, ver byte, addr string, window time.Duration, maxBatch int, stats *WireStats) *clientConn {
	cc := &clientConn{
		conn:     conn,
		proto:    proto,
		ver:      ver,
		stats:    stats,
		inflight: make(map[uint64]chan callResult),
	}
	if proto == ProtoBinary {
		cc.fw = newFrameWriter(conn, window, maxBatch, stats, func(err error) {
			cc.fail(fmt.Errorf("%w: send to %s: %v", ErrUnavailable, addr, err))
		})
	} else {
		cc.enc = gob.NewEncoder(conn)
	}
	return cc
}

// send writes one request on the connection's protocol. On the binary
// path a write failure tears the connection down via the frameWriter's
// error hook; on gob the caller must do it (a failed encode poisons the
// shared stream either way).
func (cc *clientConn) send(req *request) error {
	if cc.fw != nil {
		return cc.fw.enqueue(func(b []byte) []byte { return appendRequest(b, req, cc.ver) })
	}
	cc.wmu.Lock()
	err := cc.enc.Encode(req)
	cc.wmu.Unlock()
	return err
}

// register claims an ID slot; it fails if the connection already broke.
func (cc *clientConn) register(id uint64, ch chan callResult) bool {
	cc.imu.Lock()
	defer cc.imu.Unlock()
	if cc.broken {
		return false
	}
	cc.inflight[id] = ch
	return true
}

// unregister abandons a call (context cancelled); a late response for
// the ID is discarded by the demux loop.
func (cc *clientConn) unregister(id uint64) {
	cc.imu.Lock()
	delete(cc.inflight, id)
	cc.imu.Unlock()
}

// complete routes one response to its waiting caller.
func (cc *clientConn) complete(resp response) {
	cc.imu.Lock()
	ch := cc.inflight[resp.ID]
	delete(cc.inflight, resp.ID)
	cc.imu.Unlock()
	if ch != nil {
		ch <- callResult{resp: resp}
	}
}

// fail marks the connection broken, closes it, and fails every in-flight
// call with err. Idempotent.
func (cc *clientConn) fail(err error) {
	cc.imu.Lock()
	if cc.broken {
		cc.imu.Unlock()
		return
	}
	cc.broken = true
	pending := cc.inflight
	cc.inflight = make(map[uint64]chan callResult)
	cc.imu.Unlock()
	cc.conn.Close()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// isBroken reports whether fail has run.
func (cc *clientConn) isBroken() bool {
	cc.imu.Lock()
	defer cc.imu.Unlock()
	return cc.broken
}

// readLoop decodes responses and hands each to its caller until the
// connection dies, then fails whatever is still in flight.
func (cc *clientConn) readLoop(addr string) {
	if cc.proto == ProtoBinary {
		cc.readLoopBinary(addr)
		return
	}
	dec := gob.NewDecoder(cc.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			cc.fail(fmt.Errorf("%w: receive from %s: %v", ErrUnavailable, addr, err))
			return
		}
		cc.complete(resp)
	}
}

// readLoopBinary reads response frames, decoding and demuxing every
// message in each.
func (cc *clientConn) readLoopBinary(addr string) {
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	for {
		buf, err := readFrame(br)
		if err != nil {
			cc.fail(fmt.Errorf("%w: receive from %s: %v", ErrUnavailable, addr, err))
			return
		}
		r := wireReader{buf: buf}
		msgs := 0
		for r.remaining() > 0 {
			var resp response
			if err := r.readResponse(&resp); err != nil {
				putFrameBuf(buf)
				cc.fail(fmt.Errorf("%w: receive from %s: %v", ErrUnavailable, addr, err))
				return
			}
			msgs++
			cc.complete(resp)
		}
		cc.stats.noteRecv(len(buf), msgs)
		putFrameBuf(buf)
	}
}

// DialOption configures Dial.
type DialOption func(*Client)

// WithGobProtocol pins the client to the legacy gob codec, skipping the
// binary preamble entirely — what a pre-codec client build does. Used by
// the mixed-version tests and the gob benchmark baselines.
func WithGobProtocol() DialOption {
	return func(c *Client) { c.gobOnly = true }
}

// WithBatchWindow makes the flush leader linger for d after picking up
// a batch, letting more concurrent requests coalesce into the same
// frame at the cost of up to d of added latency. The default (0) adds
// no latency: batching then comes only from requests arriving while a
// write syscall is in flight.
func WithBatchWindow(d time.Duration) DialOption {
	return func(c *Client) {
		if d > 0 {
			c.window = d
		}
	}
}

// WithRedialSeed pins the redial-jitter RNG seed, for deterministic
// simulations and tests. Without it each client seeds from the clock —
// distinct seeds are the whole point of the jitter.
func WithRedialSeed(seed int64) DialOption {
	return func(c *Client) {
		c.rngSeed = seed
		c.seeded = true
	}
}

// WithMaxBatch caps how many requests coalesce into one frame
// (0 = unbounded). WithMaxBatch(1) pins every request to its own frame,
// which is how the unbatched benchmark baseline is measured.
func WithMaxBatch(n int) DialOption {
	return func(c *Client) {
		if n > 0 {
			c.maxBatch = n
		}
	}
}

// Client is a multiplexed TCP connection to a remote representative. It
// implements rep.Directory and is safe for concurrent use: any number of
// goroutines may have calls outstanding on the one connection at once.
// Requests carry IDs; a single reader goroutine demultiplexes responses
// to their callers, so a slow call never blocks an unrelated one. Each
// call honors its own context (deadline or cancellation) independently —
// an abandoned call's late response is simply discarded. A broken
// connection fails all in-flight calls with ErrUnavailable and is
// redialed on the next call, with exponential backoff between failed
// dial attempts.
//
// A new connection offers the binary codec via a one-byte preamble; a
// server that rejects it (a pre-codec build) makes the client downgrade
// to gob, remember the choice, and redial — so mixed-version pairs
// interoperate in both directions (see wire.go).
type Client struct {
	addr   string
	nextID atomic.Uint64

	// window and maxBatch tune the frameWriter; gobOnly pins the legacy
	// codec (set by option, or stickily after a failed negotiation).
	window   time.Duration
	maxBatch int
	stats    WireStats

	mu       sync.Mutex
	gobOnly  bool
	cc       *clientConn
	dialing  chan struct{}
	nextDial time.Time
	wait     time.Duration
	name     string
	// rng jitters redial backoff (guarded by mu; lazily seeded).
	rng     *rand.Rand
	rngSeed int64
	seeded  bool
}

var _ rep.Directory = (*Client)(nil)

// Dial connects to a representative server and fetches its name.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	c := &Client{addr: addr}
	for _, opt := range opts {
		opt(c)
	}
	resp, err := c.call(context.Background(), request{Op: opName})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.name = resp.Name
	c.mu.Unlock()
	return c, nil
}

// Protocol reports the wire codec in use: ProtoBinary or ProtoGob. With
// no live connection it reports what the next dial will offer.
func (c *Client) Protocol() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc != nil {
		return c.cc.proto
	}
	if c.gobOnly {
		return ProtoGob
	}
	return ProtoBinary
}

// WireStats returns the client's binary-codec traffic counters,
// accumulated across redials. Gob connections do not contribute.
func (c *Client) WireStats() *WireStats { return &c.stats }

// Close drops the connection, failing any in-flight calls with
// ErrUnavailable. The client remains usable: the next call redials.
func (c *Client) Close() error {
	c.mu.Lock()
	cc := c.cc
	c.cc = nil
	c.nextDial = time.Time{}
	c.wait = 0
	c.mu.Unlock()
	if cc != nil {
		cc.fail(fmt.Errorf("%w: %s: client closed", ErrUnavailable, c.addr))
	}
	return nil
}

// advanceBackoff steps the exponential redial backoff and returns the
// jittered delay to wait before the next dial attempt: uniform in
// [wait/2, wait). Called with c.mu held.
func (c *Client) advanceBackoff() time.Duration {
	if c.wait == 0 {
		c.wait = redialBase
	} else if c.wait < redialMax {
		c.wait *= 2
		if c.wait > redialMax {
			c.wait = redialMax
		}
	}
	if c.rng == nil {
		seed := c.rngSeed
		if !c.seeded {
			seed = time.Now().UnixNano()
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	half := c.wait / 2
	return half + time.Duration(c.rng.Int63n(int64(half)))
}

// dropConn forgets cc if it is still the current connection, so the next
// call dials afresh.
func (c *Client) dropConn(cc *clientConn) {
	c.mu.Lock()
	if c.cc == cc {
		c.cc = nil
	}
	c.mu.Unlock()
}

// dialAndNegotiate dials and, unless the client is pinned to gob,
// offers the binary codec. A server that answers the preamble gets a
// binary connection; one that closes instead (a pre-codec build whose
// gob decoder choked on the preamble) triggers a sticky downgrade: the
// client remembers gob and redials speaking it. A wrong downgrade — a
// flaky network eating the reply — costs only performance, because
// every new server still serves gob connections.
func (c *Client) dialAndNegotiate(ctx context.Context, useGob bool) (net.Conn, string, byte, error) {
	conn, err := (&net.Dialer{}).DialContext(ctx, "tcp", c.addr)
	if err != nil || useGob {
		return conn, ProtoGob, 0, err
	}
	deadline := time.Now().Add(negotiateTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	var reply [2]byte
	if _, err := conn.Write([]byte{preambleByte, wireVersion}); err == nil {
		_, err = io.ReadFull(conn, reply[:])
	}
	if err != nil || reply[0] != preambleByte || reply[1] == 0 || reply[1] > wireVersion {
		conn.Close()
		if ctx.Err() != nil {
			return nil, "", 0, ctx.Err()
		}
		c.mu.Lock()
		c.gobOnly = true
		c.mu.Unlock()
		conn, err := (&net.Dialer{}).DialContext(ctx, "tcp", c.addr)
		return conn, ProtoGob, 0, err
	}
	_ = conn.SetDeadline(time.Time{})
	// The server echoed min(our offer, its max): both sides speak that.
	return conn, ProtoBinary, reply[1], nil
}

// ensureConn returns a live connection, dialing when needed. Exactly one
// goroutine dials at a time; the others wait for its outcome (or their
// context). Consecutive dial failures back off exponentially, and a call
// arriving inside the backoff window waits it out (respecting ctx)
// rather than hammering the address.
func (c *Client) ensureConn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	for {
		if c.cc != nil && !c.cc.isBroken() {
			cc := c.cc
			c.mu.Unlock()
			return cc, nil
		}
		c.cc = nil
		if c.dialing != nil {
			done := c.dialing
			c.mu.Unlock()
			select {
			case <-done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			c.mu.Lock()
			continue
		}
		if wait := time.Until(c.nextDial); wait > 0 {
			c.mu.Unlock()
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
			c.mu.Lock()
			continue
		}
		c.dialing = make(chan struct{})
		useGob := c.gobOnly
		c.mu.Unlock()
		conn, proto, ver, err := c.dialAndNegotiate(ctx, useGob)
		c.mu.Lock()
		close(c.dialing)
		c.dialing = nil
		if err != nil {
			c.nextDial = time.Now().Add(c.advanceBackoff())
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, c.addr, err)
		}
		c.wait = 0
		c.nextDial = time.Time{}
		cc := newClientConn(conn, proto, ver, c.addr, c.window, c.maxBatch, &c.stats)
		c.cc = cc
		go func() {
			cc.readLoop(c.addr)
			c.dropConn(cc)
		}()
		c.mu.Unlock()
		return cc, nil
	}
}

// resultChanPool recycles the per-call result channels. A channel is
// returned to the pool only after its call received from it (so it is
// provably empty); abandoned calls leak their channel to the garbage
// collector instead, because a late response may still be sent into it.
var resultChanPool = sync.Pool{
	New: func() any { return make(chan callResult, 1) },
}

// call performs one request/response exchange on the multiplexed
// connection. Many calls may be outstanding at once; each waits only for
// its own response or its own context.
func (c *Client) call(ctx context.Context, req request) (response, error) {
	// Carry the caller's configuration epoch across the wire so the
	// remote representative can fence stale epochs. Gob and v2-binary
	// peers both transmit it; a v1 server simply never sees it (it is
	// an old build with nothing to fence against).
	req.Epoch = rep.EpochFromContext(ctx)
	for attempt := 0; ; attempt++ {
		cc, err := c.ensureConn(ctx)
		if err != nil {
			return response{}, err
		}
		// Propagate the remaining deadline budget (µs) so the server can
		// fast-reject work this caller will no longer wait for. Stamped
		// per attempt: a redial consumed part of the budget. Gob and
		// v3-binary peers carry the field; older servers never see it.
		if d, ok := ctx.Deadline(); ok {
			rem := time.Until(d)
			if rem <= 0 {
				return response{}, context.DeadlineExceeded
			}
			req.Deadline = uint64(rem / time.Microsecond)
			if req.Deadline == 0 {
				req.Deadline = 1
			}
		}
		req.ID = c.nextID.Add(1)
		ch := resultChanPool.Get().(chan callResult)
		if !cc.register(req.ID, ch) {
			// The connection broke between ensureConn and register;
			// retry once on a fresh dial, then give up.
			c.dropConn(cc)
			if attempt == 0 {
				continue
			}
			return response{}, fmt.Errorf("%w: %s: connection reset", ErrUnavailable, c.addr)
		}
		if err := cc.send(&req); err != nil {
			cc.unregister(req.ID)
			if cc.proto == ProtoGob {
				// A failed write poisons the gob stream for every user of
				// the connection, not just this call. (The binary path's
				// frameWriter already tore the connection down, unless the
				// failure was local to this one message.)
				cc.fail(fmt.Errorf("%w: send to %s: %v", ErrUnavailable, c.addr, err))
			}
			if cc.isBroken() {
				c.dropConn(cc)
			}
			return response{}, fmt.Errorf("%w: send to %s: %v", ErrUnavailable, c.addr, err)
		}
		select {
		case r := <-ch:
			resultChanPool.Put(ch)
			if r.err != nil {
				return response{}, r.err
			}
			return r.resp, decodeError(r.resp.Code, r.resp.Msg)
		case <-ctx.Done():
			cc.unregister(req.ID)
			return response{}, ctx.Err()
		}
	}
}

// Name implements rep.Directory.
func (c *Client) Name() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.name != "" {
		return c.name
	}
	return c.addr
}

// Lookup implements rep.Directory.
func (c *Client) Lookup(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.LookupResult, error) {
	resp, err := c.call(ctx, request{Op: opLookup, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.LookupResult{}, err
	}
	return rep.LookupResult{Found: resp.Found, Version: resp.Version, Value: resp.Value}, nil
}

// Predecessor implements rep.Directory.
func (c *Client) Predecessor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opPredecessor, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.NeighborResult{}, err
	}
	return rep.NeighborResult{Key: resp.Key, Version: resp.Version, Value: resp.Value, GapVersion: resp.GapVersion}, nil
}

// Successor implements rep.Directory.
func (c *Client) Successor(ctx context.Context, txn lock.TxnID, key keyspace.Key) (rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opSuccessor, Txn: uint64(txn), Key: key})
	if err != nil {
		return rep.NeighborResult{}, err
	}
	return rep.NeighborResult{Key: resp.Key, Version: resp.Version, Value: resp.Value, GapVersion: resp.GapVersion}, nil
}

// PredecessorBatch implements rep.Directory.
func (c *Client) PredecessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opPredecessorBatch, Txn: uint64(txn), Key: key, Count: max})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// SuccessorBatch implements rep.Directory.
func (c *Client) SuccessorBatch(ctx context.Context, txn lock.TxnID, key keyspace.Key, max int) ([]rep.NeighborResult, error) {
	resp, err := c.call(ctx, request{Op: opSuccessorBatch, Txn: uint64(txn), Key: key, Count: max})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// Insert implements rep.Directory.
func (c *Client) Insert(ctx context.Context, txn lock.TxnID, key keyspace.Key, ver version.V, value string) error {
	_, err := c.call(ctx, request{Op: opInsert, Txn: uint64(txn), Key: key, Version: ver, Value: value})
	return err
}

// Coalesce implements rep.Directory.
func (c *Client) Coalesce(ctx context.Context, txn lock.TxnID, lo, hi keyspace.Key, ver version.V) (rep.CoalesceResult, error) {
	resp, err := c.call(ctx, request{Op: opCoalesce, Txn: uint64(txn), Key: lo, Hi: hi, Version: ver})
	if err != nil {
		return rep.CoalesceResult{}, err
	}
	return rep.CoalesceResult{DeletedKeys: resp.DeletedKeys}, nil
}

// Prepare implements rep.Directory.
func (c *Client) Prepare(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opPrepare, Txn: uint64(txn)})
	return err
}

// Commit implements rep.Directory.
func (c *Client) Commit(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opCommit, Txn: uint64(txn)})
	return err
}

// Abort implements rep.Directory.
func (c *Client) Abort(ctx context.Context, txn lock.TxnID) error {
	_, err := c.call(ctx, request{Op: opAbort, Txn: uint64(txn)})
	return err
}

// Status implements rep.Directory.
func (c *Client) Status(ctx context.Context, txn lock.TxnID) (rep.TxnStatus, error) {
	resp, err := c.call(ctx, request{Op: opStatus, Txn: uint64(txn)})
	if err != nil {
		return 0, err
	}
	return resp.TxnStatus, nil
}
