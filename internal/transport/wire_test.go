package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/rep"
	"repdir/internal/version"
)

// TestWireGoldenVectors pins the binary encoding byte-for-byte. These
// vectors are the on-wire contract: if one of them changes, old and new
// builds can no longer talk, so a failure here means "bump the wire
// version", never "update the expected bytes".
func TestWireGoldenVectors(t *testing.T) {
	reqVectors := []struct {
		name string
		req  request
		want []byte
	}{
		{
			name: "lookup",
			req:  request{ID: 7, Op: opLookup, Txn: 9, Key: keyspace.New("k")},
			want: []byte{0x01, 0x07, 0x09, 0x02, 0x01, 'k'},
		},
		{
			name: "successor_batch",
			req:  request{ID: 1, Op: opSuccessorBatch, Txn: 2, Key: keyspace.Low(), Count: 5},
			want: []byte{0x05, 0x01, 0x02, 0x01, 0x05},
		},
		{
			name: "insert",
			req:  request{ID: 1, Op: opInsert, Txn: 2, Key: keyspace.New("ab"), Version: 3, Value: "xyz"},
			want: []byte{0x06, 0x01, 0x02, 0x02, 0x02, 'a', 'b', 0x03, 0x03, 'x', 'y', 'z'},
		},
		{
			name: "coalesce_full_range",
			req:  request{ID: 1, Op: opCoalesce, Txn: 2, Key: keyspace.Low(), Hi: keyspace.High(), Version: 5},
			want: []byte{0x07, 0x01, 0x02, 0x01, 0x03, 0x05},
		},
		{
			name: "prepare",
			req:  request{ID: 200, Op: opPrepare, Txn: 300},
			want: []byte{0x08, 0xc8, 0x01, 0xac, 0x02},
		},
	}
	for _, v := range reqVectors {
		t.Run("request_v1_"+v.name, func(t *testing.T) {
			got := appendRequest(nil, &v.req, 1)
			if !bytes.Equal(got, v.want) {
				t.Fatalf("encoding drifted:\n got  %#v\n want %#v", got, v.want)
			}
		})
	}

	// Version 2 adds the epoch uvarint after the txn in the request
	// header; everything else is the v1 layout.
	reqV2Vectors := []struct {
		name string
		req  request
		want []byte
	}{
		{
			name: "lookup_epoch",
			req:  request{ID: 7, Op: opLookup, Txn: 9, Epoch: 5, Key: keyspace.New("k")},
			want: []byte{0x01, 0x07, 0x09, 0x05, 0x02, 0x01, 'k'},
		},
		{
			name: "lookup_no_epoch",
			req:  request{ID: 7, Op: opLookup, Txn: 9, Key: keyspace.New("k")},
			want: []byte{0x01, 0x07, 0x09, 0x00, 0x02, 0x01, 'k'},
		},
		{
			name: "insert_big_epoch",
			req:  request{ID: 1, Op: opInsert, Txn: 2, Epoch: 300, Key: keyspace.New("ab"), Version: 3, Value: "xyz"},
			want: []byte{0x06, 0x01, 0x02, 0xac, 0x02, 0x02, 0x02, 'a', 'b', 0x03, 0x03, 'x', 'y', 'z'},
		},
		{
			name: "status_bypass_epoch",
			req:  request{ID: 1, Op: opStatus, Txn: 0, Epoch: ^uint64(0)},
			want: []byte{0x0b, 0x01, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		},
	}
	for _, v := range reqV2Vectors {
		t.Run("request_v2_"+v.name, func(t *testing.T) {
			got := appendRequest(nil, &v.req, 2)
			if !bytes.Equal(got, v.want) {
				t.Fatalf("encoding drifted:\n got  %#v\n want %#v", got, v.want)
			}
		})
	}

	// Version 3 adds the remaining-deadline-budget uvarint (microseconds,
	// 0 = none) after the epoch in the request header; everything else is
	// the v2 layout.
	reqV3Vectors := []struct {
		name string
		req  request
		want []byte
	}{
		{
			name: "lookup_deadline",
			req:  request{ID: 7, Op: opLookup, Txn: 9, Epoch: 5, Deadline: 300, Key: keyspace.New("k")},
			want: []byte{0x01, 0x07, 0x09, 0x05, 0xac, 0x02, 0x02, 0x01, 'k'},
		},
		{
			name: "lookup_no_deadline",
			req:  request{ID: 7, Op: opLookup, Txn: 9, Key: keyspace.New("k")},
			want: []byte{0x01, 0x07, 0x09, 0x00, 0x00, 0x02, 0x01, 'k'},
		},
		{
			name: "prepare_deadline",
			req:  request{ID: 200, Op: opPrepare, Txn: 300, Deadline: 1},
			want: []byte{0x08, 0xc8, 0x01, 0xac, 0x02, 0x00, 0x01},
		},
	}
	for _, v := range reqV3Vectors {
		t.Run("request_v3_"+v.name, func(t *testing.T) {
			got := appendRequest(nil, &v.req, 3)
			if !bytes.Equal(got, v.want) {
				t.Fatalf("encoding drifted:\n got  %#v\n want %#v", got, v.want)
			}
		})
	}

	respVectors := []struct {
		name string
		resp response
		want []byte
	}{
		{
			name: "lookup_found",
			resp: response{ID: 7, Op: opLookup, Code: codeOK, Found: true, Version: 4, Value: "v"},
			want: []byte{0x01, 0x07, 0x00, 0x01, 0x04, 0x01, 'v'},
		},
		{
			name: "predecessor",
			resp: response{ID: 1, Op: opPredecessor, Code: codeOK, Key: keyspace.New("p"), Version: 2, Value: "w", GapVersion: 3},
			want: []byte{0x02, 0x01, 0x00, 0x02, 0x01, 'p', 0x02, 0x01, 'w', 0x03},
		},
		{
			name: "status",
			resp: response{ID: 1, Op: opStatus, Code: codeOK, TxnStatus: rep.TxnStatus(2)},
			want: []byte{0x0b, 0x01, 0x00, 0x02},
		},
		{
			name: "error",
			resp: response{ID: 1, Op: opInsert, Code: codeSentinel, Msg: "no"},
			want: []byte{0x06, 0x01, 0x02, 0x02, 'n', 'o'},
		},
	}
	for _, v := range respVectors {
		t.Run("response_"+v.name, func(t *testing.T) {
			got := appendResponse(nil, &v.resp)
			if !bytes.Equal(got, v.want) {
				t.Fatalf("encoding drifted:\n got  %#v\n want %#v", got, v.want)
			}
		})
	}
}

// wireRequestVariants covers every request op with representative field
// values; wireResponseVariants does the same for responses.
func wireRequestVariants() []request {
	return []request{
		{ID: 1, Op: opLookup, Txn: 2, Key: keyspace.New("alpha")},
		{ID: 3, Op: opPredecessor, Txn: 4, Key: keyspace.High()},
		{ID: 5, Op: opSuccessor, Txn: 6, Key: keyspace.Low()},
		{ID: 7, Op: opPredecessorBatch, Txn: 8, Key: keyspace.New("b"), Count: 17},
		{ID: 9, Op: opSuccessorBatch, Txn: 10, Key: keyspace.New(""), Count: 0},
		{ID: 11, Op: opInsert, Txn: 12, Key: keyspace.New("k"), Version: 1 << 40, Value: "value with spaces\x00and zero"},
		{ID: 13, Op: opCoalesce, Txn: 14, Key: keyspace.Low(), Hi: keyspace.New("z"), Version: 7},
		{ID: 15, Op: opPrepare, Txn: 16},
		{ID: 17, Op: opCommit, Txn: 18},
		{ID: 19, Op: opAbort, Txn: 20},
		{ID: 21, Op: opStatus, Txn: 22},
		{ID: 23, Op: opName},
	}
}

func wireResponseVariants() []response {
	return []response{
		{ID: 1, Op: opLookup, Found: true, Version: 9, Value: "v"},
		{ID: 2, Op: opLookup, Found: false},
		{ID: 3, Op: opPredecessor, Key: keyspace.New("p"), Version: 1, Value: "x", GapVersion: 2},
		{ID: 4, Op: opSuccessor, Key: keyspace.High(), Version: 1, GapVersion: 1 << 50},
		{ID: 5, Op: opPredecessorBatch, Neighbors: []rep.NeighborResult{
			{Key: keyspace.Low(), Version: 1, Value: "", GapVersion: 2},
			{Key: keyspace.New("n"), Version: 3, Value: "nv", GapVersion: 4},
		}},
		{ID: 6, Op: opSuccessorBatch},
		{ID: 7, Op: opInsert},
		{ID: 8, Op: opCoalesce, DeletedKeys: []keyspace.Key{keyspace.New("a"), keyspace.New("b")}},
		{ID: 9, Op: opCoalesce},
		{ID: 10, Op: opPrepare},
		{ID: 11, Op: opCommit},
		{ID: 12, Op: opAbort},
		{ID: 13, Op: opStatus, TxnStatus: rep.TxnStatus(1)},
		{ID: 14, Op: opName, Name: "rep-a"},
		{ID: 15, Op: opInsert, Code: codeSentinel, Msg: "cannot overwrite sentinel"},
		{ID: 16, Op: opLookup, Code: codeUnavailable, Msg: "down"},
	}
}

// TestWireRoundTrip encodes and decodes every request and response
// variant, alone and coalesced into one frame.
func TestWireRoundTrip(t *testing.T) {
	for _, ver := range []byte{1, 2, 3} {
		reqs := wireRequestVariants()
		if ver >= 2 {
			for i := range reqs {
				reqs[i].Epoch = uint64(i * 3)
			}
		}
		if ver >= 3 {
			for i := range reqs {
				reqs[i].Deadline = uint64(i * 50_000)
			}
		}
		var buf []byte
		for i := range reqs {
			buf = appendRequest(buf, &reqs[i], ver)
		}
		r := wireReader{buf: buf}
		for i := range reqs {
			var got request
			if err := r.readRequest(&got, ver); err != nil {
				t.Fatalf("v%d request %d (%v): %v", ver, i, reqs[i].Op, err)
			}
			if !reflect.DeepEqual(got, reqs[i]) {
				t.Fatalf("v%d request round-trip mismatch:\n got  %+v\n want %+v", ver, got, reqs[i])
			}
		}
		if r.remaining() != 0 {
			t.Fatalf("v%d: %d bytes left over after decoding all requests", ver, r.remaining())
		}
	}

	resps := wireResponseVariants()
	var buf []byte
	for i := range resps {
		buf = appendResponse(buf, &resps[i])
	}
	r := wireReader{buf: buf}
	for i := range resps {
		var got response
		if err := r.readResponse(&got); err != nil {
			t.Fatalf("response %d (%v): %v", i, resps[i].Op, err)
		}
		if !reflect.DeepEqual(got, resps[i]) {
			t.Fatalf("response round-trip mismatch:\n got  %+v\n want %+v", got, resps[i])
		}
	}
	if r.remaining() != 0 {
		t.Fatalf("%d bytes left over after decoding all responses", r.remaining())
	}
}

// TestWireTruncatedInputs feeds every prefix of valid messages to the
// decoders: each must error cleanly, never panic or read out of bounds.
func TestWireTruncatedInputs(t *testing.T) {
	reqs := wireRequestVariants()
	for _, ver := range []byte{1, 2, 3} {
		for i := range reqs {
			full := appendRequest(nil, &reqs[i], ver)
			for n := 0; n < len(full); n++ {
				r := wireReader{buf: full[:n]}
				var got request
				if err := r.readRequest(&got, ver); err == nil {
					t.Fatalf("v%d request %v truncated to %d/%d bytes decoded without error", ver, reqs[i].Op, n, len(full))
				}
			}
		}
	}
	resps := wireResponseVariants()
	for i := range resps {
		full := appendResponse(nil, &resps[i])
		for n := 0; n < len(full); n++ {
			r := wireReader{buf: full[:n]}
			var got response
			if err := r.readResponse(&got); err == nil {
				t.Fatalf("response %v truncated to %d/%d bytes decoded without error", resps[i].Op, n, len(full))
			}
		}
	}
}

// TestProtocolNegotiation covers the mixed-version matrix: new client ↔
// new server speaks binary; a pinned-gob client against a new server
// and a new client against a gob-only (legacy) server both land on gob
// and still serve calls.
func TestProtocolNegotiation(t *testing.T) {
	cases := []struct {
		name      string
		srvOpts   []ServerOption
		dialOpts  []DialOption
		wantProto string
	}{
		{"binary_binary", nil, nil, ProtoBinary},
		{"gob_client_new_server", nil, []DialOption{WithGobProtocol()}, ProtoGob},
		{"new_client_legacy_server", []ServerOption{WithGobOnly()}, nil, ProtoGob},
		{"gob_client_legacy_server", []ServerOption{WithGobOnly()}, []DialOption{WithGobProtocol()}, ProtoGob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := Serve(rep.New("nego"), "127.0.0.1:0", tc.srvOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c, err := Dial(srv.Addr(), tc.dialOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.Protocol(); got != tc.wantProto {
				t.Fatalf("negotiated protocol = %q, want %q", got, tc.wantProto)
			}
			// The negotiated connection must actually carry traffic.
			if err := c.Insert(ctx, 1, keyspace.New("k"), 1, "v"); err != nil {
				t.Fatal(err)
			}
			if err := c.Commit(ctx, 1); err != nil {
				t.Fatal(err)
			}
			res, err := c.Lookup(ctx, 2, keyspace.New("k"))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found || res.Value != "v" {
				t.Fatalf("lookup over %s = %+v, want found v", tc.wantProto, res)
			}
			c.Abort(ctx, 2)
			if tc.wantProto == ProtoBinary {
				if sent := c.WireStats().Sent(); sent.Frames == 0 || sent.Msgs == 0 {
					t.Fatalf("binary connection recorded no wire traffic: %+v", sent)
				}
			}
		})
	}
}

// TestNegotiationDowngradeIsSticky checks a client that once met a
// legacy server keeps speaking gob on redials instead of paying a
// failed negotiation per dial.
func TestNegotiationDowngradeIsSticky(t *testing.T) {
	srv, err := Serve(rep.New("sticky"), "127.0.0.1:0", WithGobOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Protocol(); got != ProtoGob {
		t.Fatalf("protocol after first dial = %q, want gob", got)
	}
	c.Close() // drop the connection; the next call redials
	if _, err := c.Lookup(ctx, 1, keyspace.New("k")); err != nil {
		t.Fatal(err)
	}
	c.Abort(ctx, 1)
	if got := c.Protocol(); got != ProtoGob {
		t.Fatalf("protocol after redial = %q, want sticky gob", got)
	}
}

// TestLocalTCPEquivalence drives the same operation sequence through the
// in-process Local transport and a TCP client on each protocol, and
// requires identical results — the codecs must be semantically invisible.
func TestLocalTCPEquivalence(t *testing.T) {
	type outcome struct {
		desc string
		val  any
		err  error
	}
	drive := func(d rep.Directory) []outcome {
		var out []outcome
		add := func(desc string, val any, err error) {
			// Compare error identities, not message spellings: remote
			// errors carry an addr suffix by design.
			for _, sentinel := range []error{rep.ErrSentinel, rep.ErrMissingBound, rep.ErrBadRange,
				rep.ErrNoNeighbor, rep.ErrTxnDecided, rep.ErrUnknownTxn} {
				if errors.Is(err, sentinel) {
					out = append(out, outcome{desc, val, sentinel})
					return
				}
			}
			out = append(out, outcome{desc, val, err})
		}
		ins := func(txn lock.TxnID, k string, ver version.V, v string) {
			add("insert "+k, nil, d.Insert(ctx, txn, keyspace.New(k), ver, v))
		}
		ins(1, "b", 1, "bv")
		ins(1, "d", 1, "dv")
		ins(1, "f", 1, "fv")
		add("commit 1", nil, d.Commit(ctx, 1))
		lr, err := d.Lookup(ctx, 2, keyspace.New("d"))
		add("lookup d", lr, err)
		lr, err = d.Lookup(ctx, 2, keyspace.New("nope"))
		add("lookup nope", lr, err)
		nr, err := d.Predecessor(ctx, 2, keyspace.New("d"))
		add("pred d", nr, err)
		nr, err = d.Successor(ctx, 2, keyspace.New("d"))
		add("succ d", nr, err)
		ns, err := d.SuccessorBatch(ctx, 2, keyspace.Low(), 10)
		add("succ batch", ns, err)
		ns, err = d.PredecessorBatch(ctx, 2, keyspace.High(), 2)
		add("pred batch", ns, err)
		st, err := d.Status(ctx, 2)
		add("status", st, err)
		add("abort 2", nil, d.Abort(ctx, 2))
		cr, err := d.Coalesce(ctx, 3, keyspace.New("a"), keyspace.New("e"), 2)
		add("coalesce", cr, err)
		add("commit 3", nil, d.Commit(ctx, 3))
		// Error paths must map identically over the wire.
		add("insert low", nil, d.Insert(ctx, 4, keyspace.Low(), 9, "x"))
		_, err = d.Coalesce(ctx, 4, keyspace.New("z"), keyspace.New("a"), 9)
		add("coalesce bad range", nil, err)
		add("abort 4", nil, d.Abort(ctx, 4))
		return out
	}

	want := drive(NewLocal(rep.New("ref")))
	for _, proto := range []string{ProtoBinary, ProtoGob} {
		t.Run(proto, func(t *testing.T) {
			srv, err := Serve(rep.New("ref"), "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			var opts []DialOption
			if proto == ProtoGob {
				opts = append(opts, WithGobProtocol())
			}
			c, err := Dial(srv.Addr(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			got := drive(c)
			if len(got) != len(want) {
				t.Fatalf("outcome count %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].desc != want[i].desc || !reflect.DeepEqual(got[i].val, want[i].val) || !errors.Is(got[i].err, want[i].err) || (got[i].err == nil) != (want[i].err == nil) {
					t.Errorf("step %q over %s:\n got  (%+v, %v)\n want (%+v, %v)",
						want[i].desc, proto, got[i].val, got[i].err, want[i].val, want[i].err)
				}
			}
		})
	}
}

// flakyConn wraps a net.Conn so tests can inject a write failure at an
// arbitrary moment mid-stream.
type flakyConn struct {
	net.Conn
	failWrites atomic.Bool
}

func (f *flakyConn) Write(p []byte) (int, error) {
	if f.failWrites.Load() {
		return 0, errors.New("injected write failure")
	}
	return f.Conn.Write(p)
}

// testWritePoisonFastFail is the regression test for the old
// write-poisoning failure mode: a failed send on the shared connection
// must tear it down and fast-fail every in-flight call, rather than
// leaving callers hung on a stream nobody will ever write again.
func testWritePoisonFastFail(t *testing.T, proto string) {
	cli, srvSide := net.Pipe()
	defer srvSide.Close()
	go io.Copy(io.Discard, srvSide) // absorb sends; never respond

	fc := &flakyConn{Conn: cli}
	c := &Client{addr: "injected"}
	cc := newClientConn(fc, proto, wireVersion, c.addr, 0, 0, &c.stats)
	c.mu.Lock()
	c.cc = cc
	c.mu.Unlock()
	go cc.readLoop(c.addr)

	// Park calls in flight: their sends succeed, and they wait on
	// responses that will never come.
	const parked = 3
	errs := make(chan error, parked+1)
	for i := 0; i < parked; i++ {
		go func(i int) {
			errs <- c.Prepare(ctx, lock.TxnID(i+1))
		}(i)
	}
	time.Sleep(50 * time.Millisecond)

	// Now poison the stream mid-connection and issue one more call.
	fc.failWrites.Store(true)
	go func() { errs <- c.Prepare(ctx, 99) }()

	deadline := time.After(5 * time.Second)
	for i := 0; i < parked+1; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrUnavailable) {
				t.Errorf("call %d = %v, want ErrUnavailable", i, err)
			}
		case <-deadline:
			t.Fatalf("only %d of %d calls returned after a poisoned write; the rest are hung", i, parked+1)
		}
	}
	if !cc.isBroken() {
		t.Error("connection not torn down after write failure")
	}
}

func TestWritePoisonFastFailBinary(t *testing.T) { testWritePoisonFastFail(t, ProtoBinary) }
func TestWritePoisonFastFailGob(t *testing.T)    { testWritePoisonFastFail(t, ProtoGob) }

// TestServerWriteFailureFailsClientFast covers the server half of the
// write-poisoning fix end to end: when the server cannot write a
// response (here: the client's receive direction is shut down), it must
// close the connection so the client's other in-flight calls fail fast
// instead of waiting out the 30s call timeout.
func TestServerWriteFailureFailsClientFast(t *testing.T) {
	dir := slowDir{Directory: rep.New("wfail"), delay: 200 * time.Millisecond}
	srv, err := Serve(dir, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One slow call in flight, then kill the socket out from under the
	// server's pending response write.
	done := make(chan error, 1)
	go func() {
		_, err := c.Lookup(ctx, 1, keyspace.New("slow"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	breakConn(t, c)
	select {
	case err := <-done:
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("in-flight call = %v, want ErrUnavailable", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after server-side write failure")
	}
}

// TestFrameWriterBatches drives many concurrent calls over one binary
// connection and checks requests actually coalesce: group commit only
// batches when messages arrive faster than write syscalls drain, so the
// worker count must saturate the single connection.
func TestFrameWriterBatches(t *testing.T) {
	srv, err := Serve(rep.New("batch"), "127.0.0.1:0", WithPerConnConcurrency(256))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), WithBatchWindow(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 64
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := lock.TxnID(w*perWorker + i + 1)
				if _, err := c.Lookup(ctx, id, keyspace.New(fmt.Sprintf("k%d", w))); err != nil {
					t.Error(err)
					return
				}
				c.Abort(ctx, id)
			}
		}(w)
	}
	wg.Wait()
	sent := c.WireStats().Sent()
	if sent.Msgs == 0 {
		t.Fatal("no wire traffic recorded")
	}
	if sent.Frames >= sent.Msgs {
		t.Errorf("client sent %d frames for %d messages; group commit is not coalescing", sent.Frames, sent.Msgs)
	}
	t.Logf("client: %d msgs in %d frames (%.2f msgs/frame), server tx batch: %v",
		sent.Msgs, sent.Frames, float64(sent.Msgs)/float64(sent.Frames), srv.WireStats().Sent().Batch)
}

// TestMaxBatchOne pins every message to its own frame — the unbatched
// baseline the benchmarks compare against.
func TestMaxBatchOne(t *testing.T) {
	srv, err := Serve(rep.New("nobatch"), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), WithMaxBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := lock.TxnID(w*20 + i + 1)
				if _, err := c.Lookup(ctx, id, keyspace.New("k")); err != nil {
					t.Error(err)
					return
				}
				c.Abort(ctx, id)
			}
		}(w)
	}
	wg.Wait()
	sent := c.WireStats().Sent()
	if sent.Frames != sent.Msgs {
		t.Errorf("WithMaxBatch(1): %d frames for %d messages, want 1:1", sent.Frames, sent.Msgs)
	}
}
