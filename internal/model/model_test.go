package model

import (
	"math"
	"testing"
)

func TestPredictValidation(t *testing.T) {
	if _, err := Predict(3, 1, 1); err == nil {
		t.Error("3-1-1 must be rejected (no quorum intersection)")
	}
	if _, err := Predict(0, 1, 1); err == nil {
		t.Error("zero replicas must be rejected")
	}
	if _, err := Predict(3, 4, 2); err == nil {
		t.Error("oversized quorum must be rejected")
	}
}

func TestWriteAllIsExact(t *testing.T) {
	// With W = n every replica always holds every current entry: no
	// ghosts, no bound copies, exactly the victim coalesced per member.
	p, err := Predict(3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.ExpectedCoverage-3) > 1e-9 {
		t.Errorf("coverage = %v, want 3", p.ExpectedCoverage)
	}
	if p.GhostDeletions != 0 || p.Insertions != 0 {
		t.Errorf("write-all should predict zero overheads: %+v", p)
	}
	if math.Abs(p.EntriesCoalesced-1) > 1e-9 {
		t.Errorf("write-all E = %v, want 1", p.EntriesCoalesced)
	}
}

func TestKnownClosedForm322(t *testing.T) {
	// For 3-2-2 the coverage chain solves in closed form:
	// H* = 3 - (1/3) sum_k (2/3)^k (1/3)^k = 3 - 3/7 = 18/7.
	p, err := Predict(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 18.0 / 7.0
	if math.Abs(p.ExpectedCoverage-want) > 1e-6 {
		t.Errorf("H* = %v, want %v", p.ExpectedCoverage, want)
	}
	if math.Abs(p.GhostDeletions-want/3) > 1e-6 {
		t.Errorf("D = %v, want %v", p.GhostDeletions, want/3)
	}
}

func TestWalkStepsPrediction(t *testing.T) {
	// 3-2-2: D = 6/7, R = W, so steps = 1 + D/2 = 10/7 — matching the
	// measured 1.42-1.44 of the Figure 15 runs.
	p, err := Predict(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.WalkSteps-10.0/7.0) > 1e-6 {
		t.Errorf("3-2-2 walk steps = %v, want %v", p.WalkSteps, 10.0/7.0)
	}
	// Write-all never walks past ghosts.
	p, err = Predict(3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.WalkSteps != 1 {
		t.Errorf("write-all walk steps = %v, want 1", p.WalkSteps)
	}
}

func TestCoverageMonotoneInW(t *testing.T) {
	// Wider write quorums replicate entries more broadly.
	prev := 0.0
	for w := 3; w <= 5; w++ {
		p, err := Predict(5, 5-w+1, w)
		if err != nil {
			t.Fatal(err)
		}
		if p.ExpectedCoverage <= prev {
			t.Errorf("coverage should grow with W: W=%d gives %v after %v",
				w, p.ExpectedCoverage, prev)
		}
		prev = p.ExpectedCoverage
	}
}

func TestHypergeom(t *testing.T) {
	// Drawing 2 of 3 with 2 marked: overlap 1 w.p. 2/3, overlap 2 w.p. 1/3.
	if got := hypergeom(3, 2, 2, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("hypergeom(3,2,2,1) = %v", got)
	}
	if got := hypergeom(3, 2, 2, 2); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("hypergeom(3,2,2,2) = %v", got)
	}
	// Total probability is 1.
	sum := 0.0
	for o := 0; o <= 2; o++ {
		sum += hypergeom(3, 2, 2, o)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("hypergeom pmf sums to %v", sum)
	}
}
