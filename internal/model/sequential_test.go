package model

import "testing"

func TestCheckLookupAgainstCertainState(t *testing.T) {
	s := NewSequential()
	s.Applied("k", "v1", true)
	if err := s.CheckLookup("k", "v1", true); err != nil {
		t.Errorf("matching lookup = %v, want nil", err)
	}
	if err := s.CheckLookup("k", "v2", true); err == nil {
		t.Error("wrong value must be a violation")
	}
	if err := s.CheckLookup("k", "", false); err == nil {
		t.Error("absent against known-present must be a violation")
	}
	s.Applied("k", "", false)
	if err := s.CheckLookup("k", "v1", true); err == nil {
		t.Error("present against known-absent must be a violation")
	}
	if got := len(s.Violations()); got != 3 {
		t.Errorf("violations recorded = %d, want 3", got)
	}
}

func TestIndeterminateReanchorsOnObservation(t *testing.T) {
	s := NewSequential()
	s.Applied("k", "v1", true)
	s.Indeterminate("k")
	if _, _, level := s.Get("k"); level != Unknown {
		t.Fatalf("level = %v, want unknown", level)
	}
	// First observation adopts; the key is fully known again.
	if err := s.CheckLookup("k", "v9", true); err != nil {
		t.Fatalf("anchoring lookup = %v, want nil", err)
	}
	if v, present, level := s.Get("k"); v != "v9" || !present || level != Full {
		t.Errorf("after anchor: (%q,%v,%v), want (v9,true,full)", v, present, level)
	}
	// Later contradictions are violations again.
	if err := s.CheckLookup("k", "v1", true); err == nil {
		t.Error("contradiction after re-anchor must be a violation")
	}
}

func TestInsertExists(t *testing.T) {
	s := NewSequential()
	// Against a certainly-absent key, only this insert's own earlier
	// attempt can have materialized it: value becomes known.
	s.InsertExists("k", "mine")
	if v, present, level := s.Get("k"); v != "mine" || !present || level != Full {
		t.Errorf("insert-exists on absent: (%q,%v,%v), want (mine,true,full)", v, present, level)
	}
	// Against a known-present key the stored value is kept.
	s.Applied("k", "old", true)
	s.InsertExists("k", "mine2")
	if v, _, level := s.Get("k"); v != "old" || level != Full {
		t.Errorf("insert-exists on present: (%q,%v), want (old,full)", v, level)
	}
	// Against an uncertain key only presence becomes known.
	s.Indeterminate("k")
	s.InsertExists("k", "mine3")
	if _, present, level := s.Get("k"); !present || level != PresenceOnly {
		t.Errorf("insert-exists on unknown: (%v,%v), want (true,presence-only)", present, level)
	}
	// A presence-only key checks presence, then adopts the value.
	if err := s.CheckLookup("k", "", false); err == nil {
		t.Error("absent lookup against presence-only present must be a violation")
	}
	if err := s.CheckLookup("k", "seen", true); err != nil {
		t.Errorf("present lookup against presence-only = %v, want nil", err)
	}
	if v, _, level := s.Get("k"); v != "seen" || level != Full {
		t.Errorf("after presence-only anchor: (%q,%v), want (seen,full)", v, level)
	}
}

func TestUpdateNotFound(t *testing.T) {
	s := NewSequential()
	// Updates cannot remove keys: not-found against known-present is a
	// genuine violation.
	s.Applied("k", "v", true)
	if err := s.UpdateNotFound("k"); err == nil {
		t.Error("update not-found against known-present must be a violation")
	}
	// Against an uncertain key it anchors absence.
	s.Indeterminate("k")
	if err := s.UpdateNotFound("k"); err != nil {
		t.Errorf("update not-found on unknown = %v, want nil", err)
	}
	if _, present, level := s.Get("k"); present || level != Full {
		t.Errorf("after anchor: (%v,%v), want (false,full)", present, level)
	}
}

func TestDeleteNotFoundNeverViolates(t *testing.T) {
	s := NewSequential()
	// Even against a known-present key: an earlier attempt of this very
	// delete may have won before the attempt that finally reported.
	s.Applied("k", "v", true)
	s.DeleteNotFound("k")
	if _, present, level := s.Get("k"); present || level != Full {
		t.Errorf("after delete not-found: (%v,%v), want (false,full)", present, level)
	}
	if got := len(s.Violations()); got != 0 {
		t.Errorf("violations = %d, want 0", got)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewSequential()
	s.Applied("b", "v", true)
	s.Applied("a", "v", true)
	s.Indeterminate("c")
	got := s.Keys()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}
