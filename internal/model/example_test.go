package model_test

import (
	"fmt"
	"log"

	"repdir/internal/model"
)

// Example predicts the paper's Figure 15 statistics for the 3-2-2
// configuration analytically: E ~= 1.29 vs the measured 1.32, D = 6/7 vs
// the measured 0.88, I ~= 0.57 vs the measured 0.48.
func Example() {
	p, err := model.Predict(3, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)
	// Output: 3-2-2: E=1.29 D=0.86 I=0.57 (H*=2.57)
}
