// Package model is a simple analytic model of the replication
// algorithm's deletion overheads, in the spirit of the paper's remark
// that "initial work on an analytical treatment indicates that we can
// obtain similar results from simple analytic models" (section 5; the
// authors credit Joshua Bloch with the analytic model, which was never
// published — this is an independent reconstruction).
//
// The model tracks the "coverage" H of a directory entry: the number of
// representatives physically holding a copy. For an x-y-z suite with
// uniformly random quorums:
//
//   - An entry is born with H = W copies (its insert write quorum).
//   - Every suite deletion consumes one victim and two bounds (the real
//     predecessor and successor), so of the three entry-events a delete
//     generates, two are bound-servings and one is a death: an entry's
//     events are bound-servings with probability 2/3 and its death with
//     probability 1/3, independent of configuration.
//   - Serving as a bound copies the entry to every member of the
//     delete's write quorum, so H becomes |holders ∪ quorum| — a
//     hypergeometric-union Markov transition.
//
// With q = P(event is a serving) = 2/3, the coverage at a random event
// is distributed as the chain run for a Geometric(1/3) number of steps.
// Writing H* for its mean, steady-state balance gives first-order
// predictions for the paper's three statistics:
//
//	D  =  H* (n−W)/n            ghosts created per delete = destroyed
//	I  =  2 W (1 − H*/n)        bound copies missing from quorum members
//	E  =  H*/n + D/W            victim presence + ghosts per member
//
// The model treats quorum choices as independent of holder sets; in the
// implementation they are positively correlated (a key's holders were
// themselves write quorums), so the model slightly overestimates I. For
// the paper's 3-2-2 configuration it predicts E = 1.29, D = 0.86,
// I = 0.57 against measured 1.32 / 0.88 / 0.48. For write-all (W = n) it
// is exact: E = 1, D = I = 0.
package model

import (
	"fmt"
	"math"
)

// servingProbability is the chance that an event touching an entry is a
// bound-serving rather than the entry's own deletion: each suite delete
// involves two bounds and one victim.
const servingProbability = 2.0 / 3.0

// Prediction holds the model's outputs for one suite configuration.
type Prediction struct {
	// N, R, W echo the configuration.
	N, R, W int
	// ExpectedCoverage is H*: the mean number of replicas holding a
	// current entry at a random entry-event.
	ExpectedCoverage float64
	// EntriesCoalesced, GhostDeletions, and Insertions predict the
	// averages of the paper's E, D, and I statistics.
	EntriesCoalesced float64
	GhostDeletions   float64
	Insertions       float64
	// WalkSteps predicts the average number of iterations of each
	// RealPredecessor/RealSuccessor search (Figure 12): one iteration
	// plus one per ghost key surfaced by the read quorum. Per quorum
	// member, the coalesced range holds D/W ghost copies on average,
	// split evenly between the two directional walks; summing over the
	// R members gives 1 + R·D/(2W). Ghost keys replicated on several
	// quorum members are counted once by the walk but multiple times by
	// this sum, so the prediction is an upper estimate, tight when
	// ghosts rarely have more than one copy (W close to n).
	WalkSteps float64
}

// String renders the prediction like a Figure 14 column.
func (p Prediction) String() string {
	return fmt.Sprintf("%d-%d-%d: E=%.2f D=%.2f I=%.2f (H*=%.2f)",
		p.N, p.R, p.W, p.EntriesCoalesced, p.GhostDeletions, p.Insertions, p.ExpectedCoverage)
}

// Predict evaluates the model for an x-y-z configuration with uniform
// votes and uniformly random quorum selection.
func Predict(n, r, w int) (Prediction, error) {
	if n < 1 || r < 1 || w < 1 || r > n || w > n {
		return Prediction{}, fmt.Errorf("model: bad configuration %d-%d-%d", n, r, w)
	}
	if r+w <= n {
		return Prediction{}, fmt.Errorf("model: %d-%d-%d violates quorum intersection", n, r, w)
	}
	hStar := expectedCoverage(n, w)
	d := hStar * float64(n-w) / float64(n)
	i := 2 * float64(w) * (1 - hStar/float64(n))
	e := hStar/float64(n) + d/float64(w)
	return Prediction{
		N: n, R: r, W: w,
		ExpectedCoverage: hStar,
		EntriesCoalesced: e,
		GhostDeletions:   d,
		Insertions:       i,
		WalkSteps:        1 + float64(r)*d/(2*float64(w)),
	}, nil
}

// expectedCoverage computes H*: the mean coverage at a random
// entry-event, mixing the coverage Markov chain over a geometric number
// of bound-serving steps.
func expectedCoverage(n, w int) float64 {
	// dist[h] = probability the entry is held by exactly h replicas.
	dist := make([]float64, n+1)
	dist[w] = 1

	total := 0.0
	weightRemaining := 1.0
	const eps = 1e-12
	for step := 0; weightRemaining > eps && step < 10000; step++ {
		// Probability that the entry's death happens at exactly this
		// event index: (1-q) q^step.
		weight := (1 - servingProbability) * math.Pow(servingProbability, float64(step))
		total += weight * mean(dist)
		weightRemaining -= weight
		dist = transition(dist, n, w)
	}
	// Residual mass: the chain has (nearly) absorbed at h = n.
	total += weightRemaining * float64(n)
	return total
}

// transition applies one bound-serving: holders become the union of the
// current holders and a uniformly random W-subset of the n replicas.
func transition(dist []float64, n, w int) []float64 {
	next := make([]float64, n+1)
	for h, p := range dist {
		if p == 0 {
			continue
		}
		// overlap o between the holder set (size h) and the quorum
		// (size w) is hypergeometric; the union has h + w - o members.
		for o := max(0, h+w-n); o <= min(h, w); o++ {
			ph := hypergeom(n, h, w, o)
			next[h+w-o] += p * ph
		}
	}
	return next
}

// hypergeom returns P[overlap = o] when drawing w of n items, h of which
// are marked: C(h,o) C(n-h, w-o) / C(n, w).
func hypergeom(n, h, w, o int) float64 {
	return math.Exp(lchoose(h, o) + lchoose(n-h, w-o) - lchoose(n, w))
}

// lchoose is log C(a, b); -Inf when the term is impossible.
func lchoose(a, b int) float64 {
	if b < 0 || b > a {
		return math.Inf(-1)
	}
	la, _ := math.Lgamma(float64(a + 1))
	lb, _ := math.Lgamma(float64(b + 1))
	lab, _ := math.Lgamma(float64(a - b + 1))
	return la - lb - lab
}

// mean computes the expectation of a distribution over indices.
func mean(dist []float64) float64 {
	m := 0.0
	for h, p := range dist {
		m += float64(h) * p
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
