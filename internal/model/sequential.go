package model

import (
	"fmt"
	"sort"
	"sync"
)

// Certainty grades how much the sequential specification knows about a
// key after a history of operations that may include indeterminate
// failures.
type Certainty int

const (
	// Full: presence and value are both known. This is the zero value
	// on purpose: to a single sequential client a key no operation ever
	// targeted is certainly absent, so map misses read as full
	// knowledge of absence.
	Full Certainty = iota
	// PresenceOnly: whether the key exists is known, but not its value
	// (e.g. an Insert against an uncertain key reported ErrKeyExists:
	// the key is certainly present, with some committed value).
	PresenceOnly
	// Unknown: the last mutation of the key failed ambiguously (it may
	// or may not have committed), so neither presence nor value is
	// trusted until a successful operation re-anchors the key.
	Unknown
)

// String names the certainty level.
func (c Certainty) String() string {
	switch c {
	case Unknown:
		return "unknown"
	case PresenceOnly:
		return "presence-only"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Certainty(%d)", int(c))
	}
}

// keyState is the specification's belief about one key. The zero value
// (absent, Full) is correct for keys never operated on.
type keyState struct {
	present bool
	value   string
	level   Certainty
}

// Sequential is a sequential single-copy specification of the directory:
// the state a non-replicated map would hold after the same operation
// history. A chaos driver applies every completed operation to it and
// checks every successful observation against it.
//
// Failed mutations are the crux. A mutation that returns an error may
// still have taken effect — the coordinator can pass the commit point
// (first participant commit) and then lose a replica, or an internal
// retry can commit before the attempt that finally reports failure — so
// a failed mutation downgrades its key to Unknown rather than assuming
// either outcome. The next successful observation of the key re-anchors
// it: quorum intersection plus strict two-phase locking guarantee that
// once any read returns a post-commit-point state, no later read
// returns an earlier one, so anchoring on observations is sound.
//
// Sequential is safe for concurrent use, but note that with concurrent
// clients a "certain" belief is only meaningful per disjoint key range;
// the chaos soak drives it from one goroutine.
type Sequential struct {
	mu         sync.Mutex
	keys       map[string]keyState
	violations []string
}

// NewSequential returns an empty specification: every key absent, Full.
func NewSequential() *Sequential {
	return &Sequential{keys: make(map[string]keyState)}
}

// Applied records a successful mutation: Insert/Update set present with
// the written value; Delete sets absent.
func (s *Sequential) Applied(key, value string, present bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[key] = keyState{present: present, value: value, level: Full}
}

// Indeterminate records a mutation that failed ambiguously: the key's
// presence and value are untrusted until re-anchored.
func (s *Sequential) Indeterminate(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[key] = keyState{level: Unknown}
}

// CheckLookup validates a successful Lookup against the specification
// and reconciles uncertainty: an Unknown key adopts the observation
// (value and presence), a PresenceOnly key adopts the value; a Full or
// PresenceOnly contradiction is recorded and returned as a violation.
func (s *Sequential) CheckLookup(key, value string, found bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.keys[key]
	switch st.level {
	case Unknown:
		s.keys[key] = keyState{present: found, value: value, level: Full}
		return nil
	case PresenceOnly:
		if found != st.present {
			return s.violate("lookup %s = (%q,%v) contradicts presence-only spec (present=%v)",
				key, value, found, st.present)
		}
		s.keys[key] = keyState{present: found, value: value, level: Full}
		return nil
	default:
		if found != st.present {
			return s.violate("lookup %s = (%q,%v) contradicts spec (%q,%v)",
				key, value, found, st.value, st.present)
		}
		if found && value != st.value {
			return s.violate("lookup %s = %q, spec has %q", key, value, st.value)
		}
		return nil
	}
}

// InsertExists reconciles an Insert that reported the key already
// present. Never a violation: if the specification believed the key
// certainly absent, the only writer that can have materialized it is an
// earlier partially-committed attempt of this very insert, so the key
// now certainly holds this insert's value. Otherwise the key is present
// with an unknown value.
func (s *Sequential) InsertExists(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.keys[key]
	if st.level == Full && !st.present {
		s.keys[key] = keyState{present: true, value: value, level: Full}
		return
	}
	if st.level == Full && st.present {
		return // consistent; keep the known value
	}
	s.keys[key] = keyState{present: true, level: PresenceOnly}
}

// UpdateNotFound reconciles an Update that reported the key missing. An
// update attempt can never remove a key, so this contradicts a key known
// to be present; against an uncertain key it anchors absence.
func (s *Sequential) UpdateNotFound(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.keys[key]
	if st.level != Unknown && st.present {
		return s.violate("update %s reported not-found but spec has it present", key)
	}
	s.keys[key] = keyState{present: false, level: Full}
	return nil
}

// DeleteNotFound reconciles a Delete that reported the key missing.
// Never a violation, even when the key was believed present: an earlier
// attempt of this very delete may have passed its commit point before
// the attempt that finally reported. Either way the key is absent now.
func (s *Sequential) DeleteNotFound(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[key] = keyState{present: false, level: Full}
}

// Get returns the specification's belief about a key.
func (s *Sequential) Get(key string) (value string, present bool, level Certainty) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.keys[key]
	return st.value, st.present, st.level
}

// CountBounds returns the bounds the specification places on the
// directory's live-entry count: min counts keys certainly present
// (Full present or PresenceOnly), max additionally counts every key
// whose last mutation failed ambiguously and so may or may not exist.
// A Count observed between operations of a sequential driver must fall
// inside [min, max]; once every key has been re-anchored (e.g. by the
// final audit) the bounds collapse to an exact expected count.
func (s *Sequential) CountBounds() (min, max int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.keys {
		switch {
		case st.level == Unknown:
			max++
		case st.present:
			min++
			max++
		}
	}
	return min, max
}

// Keys lists every key the specification has seen, sorted.
func (s *Sequential) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Violations returns every contradiction recorded so far.
func (s *Sequential) Violations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.violations...)
}

// violate records and returns a violation; callers hold s.mu.
func (s *Sequential) violate(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	s.violations = append(s.violations, msg)
	return fmt.Errorf("model: %s", msg)
}
