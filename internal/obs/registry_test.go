package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+\-]+|\+Inf|NaN)$`)

// validatePrometheus parses exposition text, requiring every sample
// line to parse and every metric to carry HELP and TYPE headers before
// its samples. It returns the parsed samples as name{labels}→value.
func validatePrometheus(t *testing.T, r io.Reader) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Errorf("malformed comment: %q", line)
				continue
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Errorf("bad TYPE %q in %q", parts[3], line)
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line: %q", line)
			continue
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			if _, ok := typed[m[1]]; !ok {
				t.Errorf("sample %q has no TYPE header", m[1])
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("bad value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestRegistryExposition registers one of each metric kind and checks
// the rendered text parses, carries the expected values, and renders
// histograms with cumulative monotone buckets.
func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "Total ops.", func() uint64 { return 42 })
	reg.Gauge("test_depth", "Queue depth.", func() float64 { return 2.5 })
	reg.CounterMap("test_events_total", "Events by kind.", "kind",
		func() map[string]uint64 { return map[string]uint64{"a": 1, "b": 2} })
	reg.GaugeMap("test_state", `States with "quotes" and \slashes\.`, "member",
		func() map[string]float64 { return map[string]float64{`m"1\`: 3} })
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Second)
	reg.Histogram("test_latency_seconds", "Latency.", &h)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := validatePrometheus(t, strings.NewReader(text))

	if samples["test_ops_total"] != 42 {
		t.Errorf("counter = %v", samples["test_ops_total"])
	}
	if samples["test_depth"] != 2.5 {
		t.Errorf("gauge = %v", samples["test_depth"])
	}
	if samples[`test_events_total{kind="a"}`] != 1 || samples[`test_events_total{kind="b"}`] != 2 {
		t.Errorf("labeled counter missing: %v", text)
	}
	if samples[`test_state{member="m\"1\\"}`] != 3 {
		t.Errorf("escaped label missing from:\n%s", text)
	}
	if samples["test_latency_seconds_count"] != 3 {
		t.Errorf("histogram count = %v", samples["test_latency_seconds_count"])
	}
	if samples[`test_latency_seconds_bucket{le="+Inf"}`] != 3 {
		t.Error("+Inf bucket != count")
	}
	// Buckets are cumulative and monotone.
	prev := -1.0
	count := 0
	for line := range samples {
		if strings.HasPrefix(line, "test_latency_seconds_bucket") {
			count++
		}
	}
	if count != NumBuckets {
		t.Errorf("rendered %d buckets, want %d", count, NumBuckets)
	}
	for i := 0; i < numFinite; i++ {
		key := fmt.Sprintf(`test_latency_seconds_bucket{le="%s"}`,
			strconv.FormatFloat(BucketBound(i).Seconds(), 'g', -1, 64))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Errorf("bucket %s not monotone: %v < %v", key, v, prev)
		}
		prev = v
	}
}

// TestRegistryDuplicatePanics pins the registration contract.
func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "x", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.Counter("dup_total", "x", func() uint64 { return 0 })
}

// TestServeEndpoints spins up the real mux and checks /metrics and
// /debug/vars respond.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve_total", "x", func() uint64 { return 7 })
	srv := httptest.NewServer(NewMux(reg, true))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	samples := validatePrometheus(t, resp.Body)
	if samples["serve_total"] != 7 {
		t.Errorf("metrics endpoint missing counter: %v", samples)
	}

	vars, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vars.Body.Close()
	body, _ := io.ReadAll(vars.Body)
	if !strings.Contains(string(body), "memstats") {
		t.Error("expvar endpoint missing memstats")
	}
}
