package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// SizeHistogram is the unitless sibling of Histogram: fixed log-2
// buckets over non-negative integer observations (bytes per frame,
// messages per batch, entries per page). Bucket i's inclusive upper
// bound is 1<<i, so the finite bounds run 1, 2, 4, ... 2^26, plus one
// +Inf overflow bucket — the same constant-relative-error tradeoff the
// latency histograms make, reusing NumBuckets so snapshots stay
// mergeable with the same code shapes. All mutators are lock-free
// atomic adds; the zero value is ready to use.
type SizeHistogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64
	count  atomic.Uint64
}

// SizeBucketBound returns the inclusive upper bound of bucket i, or a
// negative value for the +Inf overflow bucket.
func SizeBucketBound(i int) int64 {
	if i < 0 || i >= numFinite {
		return -1
	}
	return 1 << i
}

// sizeBucketFor maps n to the smallest bucket whose bound holds it.
func sizeBucketFor(n uint64) int {
	if n <= 1 {
		return 0
	}
	idx := bits.Len64(n - 1)
	if idx >= numFinite {
		return numFinite
	}
	return idx
}

// Observe records one value.
func (h *SizeHistogram) Observe(n uint64) {
	h.counts[sizeBucketFor(n)].Add(1)
	h.sum.Add(n)
	h.count.Add(1)
}

// SizeSnapshot is a point-in-time copy of a SizeHistogram.
type SizeSnapshot struct {
	// Count is the number of observations; Sum their total value.
	Count uint64
	Sum   uint64
	// Counts[i] is the number of observations in bucket i (not
	// cumulative).
	Counts [NumBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *SizeHistogram) Snapshot() SizeSnapshot {
	var s SizeSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Mean returns the average observed value.
func (s SizeSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// bound of the bucket the quantile falls in. Observations in the
// overflow bucket report the largest finite bound.
func (s SizeSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Counts[i]
		if cum >= rank {
			if i >= numFinite {
				return SizeBucketBound(numFinite - 1)
			}
			return SizeBucketBound(i)
		}
	}
	return SizeBucketBound(numFinite - 1)
}

// String renders a compact summary.
func (s SizeSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p99<=%d",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.99))
}

// SizeSample is one labeled size histogram of a registered family.
type SizeSample struct {
	Labels []string
	Snap   SizeSnapshot
}

// SizeHistogramVec registers a labeled unitless histogram family whose
// bucket bounds are rendered as plain integers (bytes, counts) rather
// than seconds.
func (r *Registry) SizeHistogramVec(name, help string, labels []string, fn func() []SizeSample) {
	r.add(family{name: name, help: help, kind: "histogram", labels: labels, collectSize: fn})
}
