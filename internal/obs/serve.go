package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarMu serializes the check-then-publish against expvar's global
// namespace (expvar.Publish panics on duplicates and offers no query
// under lock).
var expvarMu sync.Mutex

// PublishExpvar publishes the registry's current samples as one expvar
// variable (visible at /debug/vars), flattening labels into the key.
// Publishing the same name twice is a no-op, so the call is safe from
// re-constructed serving stacks.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.snapshotMap() }))
}

// NewMux returns an http mux serving the observability endpoints:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar (reg is published as "repdir")
//	/debug/pprof   runtime profiles, when withPprof is set
//
// The mux is also usable as a library handler inside a larger server.
func NewMux(reg *Registry, withPprof bool) *http.ServeMux {
	reg.PublishExpvar("repdir")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (e.g. ":9100" or "127.0.0.1:0") and serves the
// observability mux in a background goroutine.
func Serve(addr string, reg *Registry, withPprof bool) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, withPprof)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
