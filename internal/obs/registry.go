package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sample is one labeled value of a counter or gauge family. Labels are
// positional, matching the label names the family was registered with.
type Sample struct {
	Labels []string
	Value  float64
}

// HistSample is one labeled histogram of a histogram family.
type HistSample struct {
	Labels []string
	Snap   HistogramSnapshot
}

// family is one registered metric family. Exactly one of collect /
// collectHist / collectSize is set, depending on kind.
type family struct {
	name, help, kind string
	labels           []string
	collect          func() []Sample
	collectHist      func() []HistSample
	collectSize      func() []SizeSample
}

// Registry collects metric families and renders them in the Prometheus
// text exposition format. Families are registered once (name collisions
// panic — a programming error) and collected lazily at scrape time via
// their callbacks, so registration is cheap and values are always
// current. Safe for concurrent registration and scraping.
type Registry struct {
	mu       sync.Mutex
	families []family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// add validates and records a family.
func (r *Registry) add(f family) {
	if !metricName.MatchString(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !metricName.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.families {
		if have.name == f.name {
			panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
		}
	}
	r.families = append(r.families, f)
}

// Counter registers an unlabeled monotonic counter read from fn.
func (r *Registry) Counter(name, help string, fn func() uint64) {
	r.add(family{name: name, help: help, kind: "counter",
		collect: func() []Sample { return []Sample{{Value: float64(fn())}} }})
}

// Gauge registers an unlabeled gauge read from fn.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(family{name: name, help: help, kind: "gauge",
		collect: func() []Sample { return []Sample{{Value: fn()}} }})
}

// CounterVec registers a labeled counter family collected from fn.
func (r *Registry) CounterVec(name, help string, labels []string, fn func() []Sample) {
	r.add(family{name: name, help: help, kind: "counter", labels: labels, collect: fn})
}

// GaugeVec registers a labeled gauge family collected from fn.
func (r *Registry) GaugeVec(name, help string, labels []string, fn func() []Sample) {
	r.add(family{name: name, help: help, kind: "gauge", labels: labels, collect: fn})
}

// HistogramVec registers a labeled histogram family collected from fn.
func (r *Registry) HistogramVec(name, help string, labels []string, fn func() []HistSample) {
	r.add(family{name: name, help: help, kind: "histogram", labels: labels, collectHist: fn})
}

// Histogram registers a single unlabeled histogram.
func (r *Registry) Histogram(name, help string, h *Histogram) {
	r.HistogramVec(name, help, nil, func() []HistSample {
		return []HistSample{{Snap: h.Snapshot()}}
	})
}

// CounterMap registers a one-label counter family collected from a
// label→count map (the shape most snapshot methods already return).
func (r *Registry) CounterMap(name, help, label string, fn func() map[string]uint64) {
	r.CounterVec(name, help, []string{label}, func() []Sample {
		m := fn()
		out := make([]Sample, 0, len(m))
		for l, v := range m {
			out = append(out, Sample{Labels: []string{l}, Value: float64(v)})
		}
		return out
	})
}

// GaugeMap registers a one-label gauge family collected from a
// label→value map.
func (r *Registry) GaugeMap(name, help, label string, fn func() map[string]float64) {
	r.GaugeVec(name, help, []string{label}, func() []Sample {
		m := fn()
		out := make([]Sample, 0, len(m))
		for l, v := range m {
			out = append(out, Sample{Labels: []string{l}, Value: v})
		}
		return out
	})
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...}; extra appends one more pair (used
// for histogram le bounds). Empty input renders nothing.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(val))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format.
// Samples within a family are sorted by label values, so the output is
// deterministic for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		if f.kind == "histogram" {
			if f.collectSize != nil {
				samples := f.collectSize()
				sort.Slice(samples, func(i, j int) bool {
					return labelLess(samples[i].Labels, samples[j].Labels)
				})
				for _, s := range samples {
					writeSizeHistogram(bw, f, s)
				}
				continue
			}
			samples := f.collectHist()
			sort.Slice(samples, func(i, j int) bool {
				return labelLess(samples[i].Labels, samples[j].Labels)
			})
			for _, s := range samples {
				writeHistogram(bw, f, s)
			}
			continue
		}
		samples := f.collect()
		sort.Slice(samples, func(i, j int) bool {
			return labelLess(samples[i].Labels, samples[j].Labels)
		})
		for _, s := range samples {
			fmt.Fprintf(bw, "%s%s %s\n", f.name,
				labelString(f.labels, s.Labels, "", ""), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram sample: cumulative buckets with
// le bounds in seconds, then _sum and _count.
func writeHistogram(w io.Writer, f family, s HistSample) {
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Snap.Counts[i]
		le := "+Inf"
		if b := BucketBound(i); b >= 0 {
			le = formatValue(b.Seconds())
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(f.labels, s.Labels, "le", le), cum)
	}
	ls := labelString(f.labels, s.Labels, "", "")
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatValue(s.Snap.Sum.Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, s.Snap.Count)
}

// writeSizeHistogram renders one unitless histogram sample: cumulative
// buckets with integer le bounds, then _sum and _count.
func writeSizeHistogram(w io.Writer, f family, s SizeSample) {
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Snap.Counts[i]
		le := "+Inf"
		if b := SizeBucketBound(i); b >= 0 {
			le = strconv.FormatInt(b, 10)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(f.labels, s.Labels, "le", le), cum)
	}
	ls := labelString(f.labels, s.Labels, "", "")
	fmt.Fprintf(w, "%s_sum%s %d\n", f.name, ls, s.Snap.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, s.Snap.Count)
}

// labelLess orders label value slices lexicographically.
func labelLess(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Handler returns an http.Handler serving the exposition text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// snapshotMap renders every family's current samples as a flat
// name{labels}→value map, the shape expvar wants.
func (r *Registry) snapshotMap() map[string]any {
	r.mu.Lock()
	families := append([]family(nil), r.families...)
	r.mu.Unlock()
	out := make(map[string]any)
	for _, f := range families {
		if f.kind == "histogram" {
			if f.collectSize != nil {
				for _, s := range f.collectSize() {
					ls := labelString(f.labels, s.Labels, "", "")
					out[f.name+ls+"_count"] = s.Snap.Count
					out[f.name+ls+"_sum"] = s.Snap.Sum
				}
				continue
			}
			for _, s := range f.collectHist() {
				ls := labelString(f.labels, s.Labels, "", "")
				out[f.name+ls+"_count"] = s.Snap.Count
				out[f.name+ls+"_sum_seconds"] = s.Snap.Sum.Seconds()
			}
			continue
		}
		for _, s := range f.collect() {
			out[f.name+labelString(f.labels, s.Labels, "", "")] = s.Value
		}
	}
	return out
}
