// Package obs is the suite's observability layer: lightweight
// per-operation traces, fixed log-bucket latency histograms, and a
// Prometheus-text exposition registry, all stdlib-only (enforced by
// `make obsdeps`). The package deliberately knows nothing about the
// directory suite — core, transport, and heal emit into it through
// plain values and callbacks, so obs sits at the bottom of the
// dependency order next to keyspace and version.
//
// Everything here is designed to be safe to leave wired in production
// paths: histograms are a handful of atomic adds per observation, and
// every trace entry point is nil-receiver safe, so an unconfigured
// suite pays only a nil check.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Bucket layout: bound i is 1µs << i, so the finite bounds run
// 1µs, 2µs, 4µs, ... up to ~67s, plus one overflow (+Inf) bucket.
// Powers of two keep bucketFor a single bit-length instruction and give
// a constant relative error of at most 2× — the standard tradeoff of
// log-bucketed latency histograms (HdrHistogram, Prometheus defaults).
const (
	// numFinite is the number of finite bucket bounds.
	numFinite = 27
	// NumBuckets counts all buckets, including the +Inf overflow.
	NumBuckets = numFinite + 1
)

// BucketBound returns the inclusive upper bound of bucket i, or a
// negative duration for the +Inf overflow bucket.
func BucketBound(i int) time.Duration {
	if i < 0 || i >= numFinite {
		return -1
	}
	return time.Microsecond << i
}

// bucketFor maps a duration to its bucket index: the smallest i with
// d <= BucketBound(i), or the overflow bucket. Negative and sub-µs
// durations land in bucket 0.
func bucketFor(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// Ceil to whole microseconds, then take ceil(log2).
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	idx := bits.Len64(us - 1)
	if idx >= numFinite {
		return numFinite
	}
	return idx
}

// Histogram is a fixed log-bucket latency histogram. All mutators are
// lock-free atomic adds, so one histogram can absorb observations from
// any number of goroutines. The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Uint64
	max    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
	// Track the exact maximum so overflow-bucket quantiles can report a
	// true bound instead of clamping to the largest finite bucket (~67s),
	// which would silently under-report a pathological tail.
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Because the
// fields are read individually, a snapshot taken while observations are
// in flight may be off by the observations that landed mid-read; the
// per-bucket counts are each exact.
type HistogramSnapshot struct {
	// Count is the number of observations; Sum their total duration.
	Count uint64
	Sum   time.Duration
	// Max is the largest single observation. It is the value Quantile
	// reports for quantiles that land in the +Inf overflow bucket, so
	// tail verdicts never clamp to the largest finite bound.
	Max time.Duration
	// Counts[i] is the number of observations in bucket i (NOT
	// cumulative; the Prometheus renderer accumulates).
	Counts [NumBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = time.Duration(h.sum.Load())
	s.Count = h.count.Load()
	s.Max = time.Duration(h.max.Load())
	return s
}

// Merge returns the bucket-wise sum of two snapshots (same fixed
// layout, so merging is exact). Max merges as the larger of the two.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Counts {
		out.Counts[i] += o.Counts[i]
	}
	return out
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// bound of the bucket the quantile falls in. Quantiles that land in the
// +Inf overflow bucket report the exact observed maximum, never a
// finite bucket bound that would under-state the tail.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	// Ceiling rank: the q-quantile is the smallest observation with at
	// least ceil(q*n) observations at or below it.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += s.Counts[i]
		if cum >= rank {
			if i >= numFinite {
				return s.overflowBound()
			}
			return BucketBound(i)
		}
	}
	return s.overflowBound()
}

// overflowBound is what Quantile reports for the +Inf bucket: the exact
// observed maximum, floored at the largest finite bound for hand-built
// snapshots that populated Counts but not Max (the bucket's own lower
// edge — still never an under-report of where the tail starts).
func (s HistogramSnapshot) overflowBound() time.Duration {
	if last := BucketBound(numFinite - 1); s.Max < last {
		return last
	}
	return s.Max
}

// String renders a compact summary.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50<=%v p99<=%v",
		s.Count, s.Mean().Round(time.Microsecond),
		s.Quantile(0.50), s.Quantile(0.99))
}

// HistogramVec is a set of histograms keyed by one label value (the
// operation name, the 2PC phase, ...). Labels are created on first use.
type HistogramVec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistogramVec builds an empty vector.
func NewHistogramVec() *HistogramVec {
	return &HistogramVec{m: make(map[string]*Histogram)}
}

// With returns the histogram for the label, creating it if needed.
func (v *HistogramVec) With(label string) *Histogram {
	v.mu.RLock()
	h, ok := v.m[label]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[label]; ok {
		return h
	}
	h = &Histogram{}
	v.m[label] = h
	return h
}

// Labels returns the known labels, sorted.
func (v *HistogramVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies every label's histogram.
func (v *HistogramVec) Snapshot() map[string]HistogramSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(v.m))
	for l, h := range v.m {
		out[l] = h.Snapshot()
	}
	return out
}

// CounterVec is a set of monotonic counters keyed by one label value.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*atomic.Uint64
}

// NewCounterVec builds an empty vector.
func NewCounterVec() *CounterVec {
	return &CounterVec{m: make(map[string]*atomic.Uint64)}
}

// Add increments the label's counter by n.
func (v *CounterVec) Add(label string, n uint64) {
	v.mu.RLock()
	c, ok := v.m[label]
	v.mu.RUnlock()
	if !ok {
		v.mu.Lock()
		if c, ok = v.m[label]; !ok {
			c = &atomic.Uint64{}
			v.m[label] = c
		}
		v.mu.Unlock()
	}
	c.Add(n)
}

// Get returns the label's current count (0 for unknown labels).
func (v *CounterVec) Get(label string) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c, ok := v.m[label]; ok {
		return c.Load()
	}
	return 0
}

// Snapshot copies every label's count.
func (v *CounterVec) Snapshot() map[string]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.m))
	for l, c := range v.m {
		out[l] = c.Load()
	}
	return out
}
