package obs

import (
	"sync/atomic"
	"time"
)

// ObserverConfig tunes an Observer. The zero value means defaults.
type ObserverConfig struct {
	// TraceRing is the number of recent completed traces retained
	// (default 64). Zero or negative uses the default; set Tracing
	// false to disable tracing entirely.
	TraceRing int
	// NoTrace disables per-operation tracing; histograms and counters
	// are still collected.
	NoTrace bool
	// SlowOp, when positive, logs (or hands to OnSlow) every completed
	// trace at or over this duration.
	SlowOp time.Duration
	// OnSlow overrides the default slow-trace logger.
	OnSlow func(TraceSnapshot)
}

// Observer aggregates the instrumentation one directory suite emits:
// per-operation latency histograms and traces, per-2PC-phase latency,
// message counts per operation (the paper's section 4 cost unit), and
// the per-delete neighbor-probe statistics of Figure 12. All methods
// are nil-receiver safe, so an uninstrumented suite pays one nil check
// per operation.
type Observer struct {
	tracer *Tracer

	ops    *HistogramVec // operation latency, by op label
	phases *HistogramVec // 2PC phase latency, by phase label

	opCount  *CounterVec // completed operations, by op
	opErrors *CounterVec // completed operations that failed, by op
	opMsgs   *CounterVec // representative messages sent, by op

	// Paper-metric counters: per-committed-Delete statistics, from
	// which the exposition derives probes-per-delete and
	// walk-steps-per-delete gauges matching the section 4 tables.
	deletes         atomic.Uint64
	neighborProbes  atomic.Uint64
	walkSteps       atomic.Uint64
	ghostDeletions  atomic.Uint64
	boundInsertions atomic.Uint64

	// Storage-fault counters: what recovery salvaged, what it gave up
	// on, and how far rebuild-from-peers has gotten.
	walSalvages       atomic.Uint64
	salvagedRecords   atomic.Uint64
	quarantinedBytes  atomic.Uint64
	snapshotFallbacks atomic.Uint64
	rebuilds          atomic.Uint64
	rebuildEntries    atomic.Uint64

	// Reconfiguration counters: epoch transitions committed, operations
	// fenced for carrying a stale epoch, and read-quorum votes served by
	// zero-data witness replicas.
	reconfigEpochs  atomic.Uint64
	staleRejections atomic.Uint64
	witnessVotes    atomic.Uint64
}

// StorageStats is a snapshot of the storage-fault counters.
type StorageStats struct {
	// Salvages counts WAL recoveries that stopped before a clean EOF
	// and quarantined a tail.
	Salvages uint64
	// SalvagedRecords counts records recovered by those salvages.
	SalvagedRecords uint64
	// QuarantinedBytes counts unreadable tail bytes moved to sidecars.
	QuarantinedBytes uint64
	// SnapshotFallbacks counts corrupt snapshots abandoned in favor of
	// WAL-only recovery.
	SnapshotFallbacks uint64
	// Rebuilds counts replicas that opened empty and were rebuilt from
	// a quorum of peers.
	Rebuilds uint64
	// RebuildEntries counts entries installed on rebuilding replicas.
	RebuildEntries uint64
}

// NewObserver builds an observer.
func NewObserver(cfg ObserverConfig) *Observer {
	o := &Observer{
		ops:      NewHistogramVec(),
		phases:   NewHistogramVec(),
		opCount:  NewCounterVec(),
		opErrors: NewCounterVec(),
		opMsgs:   NewCounterVec(),
	}
	if !cfg.NoTrace {
		o.tracer = NewTracer(TracerConfig{Ring: cfg.TraceRing, SlowOp: cfg.SlowOp, OnSlow: cfg.OnSlow})
	}
	return o
}

// StartTrace begins a trace for one operation (nil when tracing is off
// or the observer is nil — the returned nil *Trace is safe to use).
func (o *Observer) StartTrace(op string) *Trace {
	if o == nil {
		return nil
	}
	return o.tracer.Start(op)
}

// Tracer returns the observer's tracer (nil when tracing is off).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// OpDone records one completed suite operation: its latency, its
// message count, and whether it failed.
func (o *Observer) OpDone(op string, d time.Duration, msgs int, err error) {
	if o == nil {
		return
	}
	o.ops.With(op).Observe(d)
	o.opCount.Add(op, 1)
	if msgs > 0 {
		o.opMsgs.Add(op, uint64(msgs))
	}
	if err != nil {
		o.opErrors.Add(op, 1)
	}
}

// PhaseDone records one completed 2PC phase round.
func (o *Observer) PhaseDone(phase string, d time.Duration) {
	if o == nil {
		return
	}
	o.phases.With(phase).Observe(d)
}

// DeleteObserved records one committed Delete's section 4 statistics.
func (o *Observer) DeleteObserved(neighborProbes, walkSteps, ghostDeletions, boundInsertions int) {
	if o == nil {
		return
	}
	o.deletes.Add(1)
	o.neighborProbes.Add(uint64(neighborProbes))
	o.walkSteps.Add(uint64(walkSteps))
	o.ghostDeletions.Add(uint64(ghostDeletions))
	o.boundInsertions.Add(uint64(boundInsertions))
}

// SalvageObserved records one WAL salvage: how many records survived
// and how many tail bytes were quarantined.
func (o *Observer) SalvageObserved(records int, quarantined int64) {
	if o == nil {
		return
	}
	o.walSalvages.Add(1)
	o.salvagedRecords.Add(uint64(records))
	if quarantined > 0 {
		o.quarantinedBytes.Add(uint64(quarantined))
	}
}

// SnapshotFallback records one corrupt snapshot abandoned for WAL-only
// recovery.
func (o *Observer) SnapshotFallback() {
	if o == nil {
		return
	}
	o.snapshotFallbacks.Add(1)
}

// RebuildStarted records one replica opening empty for rebuild from
// peers.
func (o *Observer) RebuildStarted() {
	if o == nil {
		return
	}
	o.rebuilds.Add(1)
}

// RebuildProgress records entries installed on a rebuilding replica.
func (o *Observer) RebuildProgress(entries int) {
	if o == nil || entries <= 0 {
		return
	}
	o.rebuildEntries.Add(uint64(entries))
}

// EpochAdvanced records one committed configuration-epoch transition.
func (o *Observer) EpochAdvanced() {
	if o == nil {
		return
	}
	o.reconfigEpochs.Add(1)
}

// StaleRejected records one operation fenced with rep.ErrStaleEpoch.
func (o *Observer) StaleRejected() {
	if o == nil {
		return
	}
	o.staleRejections.Add(1)
}

// WitnessVotes records read-quorum votes served by witness replicas.
func (o *Observer) WitnessVotes(n int) {
	if o == nil || n <= 0 {
		return
	}
	o.witnessVotes.Add(uint64(n))
}

// Storage returns a snapshot of the storage-fault counters.
func (o *Observer) Storage() StorageStats {
	if o == nil {
		return StorageStats{}
	}
	return StorageStats{
		Salvages:          o.walSalvages.Load(),
		SalvagedRecords:   o.salvagedRecords.Load(),
		QuarantinedBytes:  o.quarantinedBytes.Load(),
		SnapshotFallbacks: o.snapshotFallbacks.Load(),
		Rebuilds:          o.rebuilds.Load(),
		RebuildEntries:    o.rebuildEntries.Load(),
	}
}

// ReconfigStats is a snapshot of the reconfiguration counters.
type ReconfigStats struct {
	// Epochs counts committed configuration-epoch transitions.
	Epochs uint64
	// StaleRejections counts operations fenced with rep.ErrStaleEpoch.
	StaleRejections uint64
	// WitnessVotes counts read-quorum votes served by witness replicas.
	WitnessVotes uint64
}

// Reconfig returns a snapshot of the reconfiguration counters.
func (o *Observer) Reconfig() ReconfigStats {
	if o == nil {
		return ReconfigStats{}
	}
	return ReconfigStats{
		Epochs:          o.reconfigEpochs.Load(),
		StaleRejections: o.staleRejections.Load(),
		WitnessVotes:    o.witnessVotes.Load(),
	}
}

// OpLatency returns the latency histogram snapshot for one operation.
func (o *Observer) OpLatency(op string) HistogramSnapshot {
	if o == nil {
		return HistogramSnapshot{}
	}
	return o.ops.With(op).Snapshot()
}

// PhaseLatency returns the latency histogram snapshot for one 2PC phase.
func (o *Observer) PhaseLatency(phase string) HistogramSnapshot {
	if o == nil {
		return HistogramSnapshot{}
	}
	return o.phases.With(phase).Snapshot()
}

// OpCounts returns completed-operation counts by op.
func (o *Observer) OpCounts() map[string]uint64 {
	if o == nil {
		return nil
	}
	return o.opCount.Snapshot()
}

// MessagesPerOp returns the mean number of representative messages per
// completed operation of the given type — the paper's section 4 cost
// metric, read from live traffic.
func (o *Observer) MessagesPerOp(op string) float64 {
	if o == nil {
		return 0
	}
	n := o.opCount.Get(op)
	if n == 0 {
		return 0
	}
	return float64(o.opMsgs.Get(op)) / float64(n)
}

// ProbesPerDelete returns the mean neighbor probes per committed
// Delete (Figure 12's message count).
func (o *Observer) ProbesPerDelete() float64 {
	n := o.deletesObserved()
	if n == 0 {
		return 0
	}
	return float64(o.neighborProbes.Load()) / float64(n)
}

func (o *Observer) deletesObserved() uint64 {
	if o == nil {
		return 0
	}
	return o.deletes.Load()
}

// Register exposes the observer's metrics on reg under repdir_* names.
func (o *Observer) Register(reg *Registry) {
	if o == nil {
		return
	}
	reg.HistogramVec("repdir_op_latency_seconds",
		"Latency of directory suite operations, by operation type.",
		[]string{"op"}, func() []HistSample {
			snaps := o.ops.Snapshot()
			out := make([]HistSample, 0, len(snaps))
			for op, s := range snaps {
				out = append(out, HistSample{Labels: []string{op}, Snap: s})
			}
			return out
		})
	reg.HistogramVec("repdir_txn_phase_latency_seconds",
		"Latency of two-phase-commit rounds, by phase (prepare/commit/abort).",
		[]string{"phase"}, func() []HistSample {
			snaps := o.phases.Snapshot()
			out := make([]HistSample, 0, len(snaps))
			for ph, s := range snaps {
				out = append(out, HistSample{Labels: []string{ph}, Snap: s})
			}
			return out
		})
	reg.CounterMap("repdir_ops_total",
		"Completed directory suite operations, by operation type.",
		"op", o.opCount.Snapshot)
	reg.CounterMap("repdir_op_errors_total",
		"Completed directory suite operations that returned an error, by type.",
		"op", o.opErrors.Snapshot)
	reg.CounterMap("repdir_op_messages_total",
		"Representative messages sent by suite operations, by operation type.",
		"op", o.opMsgs.Snapshot)
	reg.GaugeMap("repdir_messages_per_op",
		"Mean representative messages per completed operation (paper section 4).",
		"op", func() map[string]float64 {
			out := make(map[string]float64)
			for op := range o.opCount.Snapshot() {
				out[op] = o.MessagesPerOp(op)
			}
			return out
		})
	reg.Counter("repdir_deletes_observed_total",
		"Committed Delete operations with recorded section 4 statistics.",
		o.deletes.Load)
	reg.Counter("repdir_delete_neighbor_probes_total",
		"Neighbor probe messages sent by real-predecessor/successor searches (Figure 12).",
		o.neighborProbes.Load)
	reg.Counter("repdir_delete_walk_steps_total",
		"Iterations of the real-predecessor/successor search loops.",
		o.walkSteps.Load)
	reg.Counter("repdir_delete_ghost_deletions_total",
		"Ghost entries removed while coalescing, beyond the deleted entry itself.",
		o.ghostDeletions.Load)
	reg.Counter("repdir_delete_bound_insertions_total",
		"Predecessor/successor copies installed on write-quorum members while coalescing.",
		o.boundInsertions.Load)
	reg.Gauge("repdir_neighbor_probes_per_delete",
		"Mean neighbor probes per committed Delete (Figure 12 message count).",
		o.ProbesPerDelete)
	reg.Counter("repdir_storage_salvages_total",
		"WAL recoveries that stopped before a clean EOF and quarantined a tail.",
		o.walSalvages.Load)
	reg.Counter("repdir_storage_salvaged_records_total",
		"Valid records recovered by WAL salvage scans.",
		o.salvagedRecords.Load)
	reg.Counter("repdir_storage_quarantined_bytes_total",
		"Unreadable WAL tail bytes moved to quarantine sidecars.",
		o.quarantinedBytes.Load)
	reg.Counter("repdir_storage_snapshot_fallbacks_total",
		"Corrupt snapshots abandoned in favor of WAL-only recovery.",
		o.snapshotFallbacks.Load)
	reg.Counter("repdir_storage_rebuilds_total",
		"Replicas opened empty and rebuilt from a quorum of peers.",
		o.rebuilds.Load)
	reg.Counter("repdir_storage_rebuild_entries_total",
		"Entries installed on rebuilding replicas by rebuild-from-peers.",
		o.rebuildEntries.Load)
	reg.Counter("repdir_reconfig_epochs_total",
		"Configuration-epoch transitions committed by reconfiguration.",
		o.reconfigEpochs.Load)
	reg.Counter("repdir_reconfig_stale_rejections_total",
		"Operations fenced for carrying a stale configuration epoch.",
		o.staleRejections.Load)
	reg.Counter("repdir_reconfig_witness_votes_total",
		"Read-quorum votes served by zero-data witness replicas.",
		o.witnessVotes.Load)
	if o.tracer != nil {
		reg.Counter("repdir_traces_finished_total",
			"Operation traces completed.", o.tracer.Finished)
		reg.Counter("repdir_traces_slow_total",
			"Completed traces at or over the slow-op threshold.", o.tracer.Slow)
	}
}
