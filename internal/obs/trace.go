package obs

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed step inside a trace, recorded as offsets from the
// trace's start so snapshots are self-contained.
type Span struct {
	// Name labels the step, e.g. "quorum-read k0042" or "2pc-prepare".
	Name string
	// Start and End are offsets from the trace's begin time. End is
	// negative while the span is open (a trace snapshotted mid-flight
	// would show it; finished traces never do).
	Start, End time.Duration
}

// Trace records the timed steps of one suite operation: quorum rounds,
// neighbor walks, per-member RPCs, 2PC phases, wait-die backoffs. A
// trace is created by Tracer.Start and published by Finish. All methods
// are safe on a nil receiver (they no-op), so instrumented code paths
// need no "is tracing on" conditionals, and safe for concurrent use (a
// parallel quorum fan-out spans from several goroutines).
type Trace struct {
	op     string
	begin  time.Time
	tracer *Tracer

	mu       sync.Mutex
	spans    []Span
	finished bool
}

// SpanHandle ends one span. The zero value is a no-op, which is what
// StartSpan on a nil trace returns.
type SpanHandle struct {
	t   *Trace
	idx int
}

// StartSpan opens a named span at the current time. Spans may overlap
// and nest freely; the snapshot keeps them in start order.
func (t *Trace) StartSpan(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Name: name, Start: time.Since(t.begin), End: -1})
	return SpanHandle{t: t, idx: len(t.spans) - 1}
}

// End closes the span.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	h.t.spans[h.idx].End = time.Since(h.t.begin)
	h.t.mu.Unlock()
}

// TraceSnapshot is a completed (or copied) trace.
type TraceSnapshot struct {
	// Op is the operation label the trace was started with.
	Op string
	// Begin is the wall-clock start; Duration the total elapsed time.
	Begin    time.Time
	Duration time.Duration
	// Messages is the number of representative messages the operation
	// sent (the paper's section 4 cost unit), as reported to Finish.
	Messages int
	// Err is the operation's final error text, empty on success.
	Err string
	// Spans are the recorded steps, in start order.
	Spans []Span
}

// Finish completes the trace, publishing it to the tracer's ring buffer
// and, when it exceeded the slow-op threshold, to the slow-op hook.
// Finishing a trace twice is a no-op.
func (t *Trace) Finish(err error, messages int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	snap := TraceSnapshot{
		Op:       t.op,
		Begin:    t.begin,
		Duration: time.Since(t.begin),
		Messages: messages,
		Spans:    append([]Span(nil), t.spans...),
	}
	t.mu.Unlock()
	if err != nil {
		snap.Err = err.Error()
	}
	t.tracer.record(snap)
}

// TracerConfig tunes a Tracer. The zero value means defaults.
type TracerConfig struct {
	// Ring is the number of recent completed traces kept (default 64).
	Ring int
	// SlowOp, when positive, is the duration at or above which a
	// completed trace is handed to OnSlow.
	SlowOp time.Duration
	// OnSlow receives slow traces; nil with SlowOp set logs them via
	// the standard library logger. It runs synchronously on the
	// goroutine finishing the operation, so it should be quick.
	OnSlow func(TraceSnapshot)
}

// Tracer hands out traces and retains a ring buffer of recently
// completed ones for inspection ("where did that slow Lookup spend its
// time?"). Safe for concurrent use; nil-receiver safe.
type Tracer struct {
	slow   time.Duration
	onSlow func(TraceSnapshot)

	mu   sync.Mutex
	ring []TraceSnapshot
	next int
	full bool

	total     atomic.Uint64
	slowCount atomic.Uint64
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 64
	}
	t := &Tracer{
		slow:   cfg.SlowOp,
		onSlow: cfg.OnSlow,
		ring:   make([]TraceSnapshot, cfg.Ring),
	}
	if t.slow > 0 && t.onSlow == nil {
		t.onSlow = func(s TraceSnapshot) { log.Printf("obs: slow operation:\n%s", FormatTrace(s)) }
	}
	return t
}

// Start begins a trace for the named operation. A nil tracer returns a
// nil trace, on which every method is a no-op.
func (t *Tracer) Start(op string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{op: op, begin: time.Now(), tracer: t}
}

// record files a completed trace.
func (t *Tracer) record(snap TraceSnapshot) {
	if t == nil {
		return
	}
	t.total.Add(1)
	t.mu.Lock()
	t.ring[t.next] = snap
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	t.mu.Unlock()
	if t.slow > 0 && snap.Duration >= t.slow {
		t.slowCount.Add(1)
		if t.onSlow != nil {
			t.onSlow(snap)
		}
	}
}

// Recent returns the retained traces, oldest first.
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TraceSnapshot
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Finished returns how many traces have completed; Slow how many of
// those crossed the slow-op threshold.
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Slow returns the number of completed traces at or over the slow-op
// threshold.
func (t *Tracer) Slow() uint64 {
	if t == nil {
		return 0
	}
	return t.slowCount.Load()
}

// FormatTrace renders a snapshot as an indented text timeline.
func FormatTrace(s TraceSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %v, %d msgs", s.Op, s.Duration.Round(time.Microsecond), s.Messages)
	if s.Err != "" {
		fmt.Fprintf(&b, ", err=%s", s.Err)
	}
	b.WriteByte('\n')
	for _, sp := range s.Spans {
		end := "open"
		if sp.End >= 0 {
			end = fmt.Sprintf("+%v", (sp.End - sp.Start).Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "  %10v %-10s %s\n", sp.Start.Round(time.Microsecond), end, sp.Name)
	}
	return b.String()
}
