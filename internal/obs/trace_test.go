package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceSpans checks span recording and snapshot publication.
func TestTraceSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 8})
	trace := tr.Start("delete")
	a := trace.StartSpan("quorum-read k1")
	a.End()
	b := trace.StartSpan("2pc-prepare")
	b.End()
	trace.Finish(nil, 7)

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d traces", len(recent))
	}
	snap := recent[0]
	if snap.Op != "delete" || snap.Messages != 7 || snap.Err != "" {
		t.Errorf("snapshot = %+v", snap)
	}
	if len(snap.Spans) != 2 || snap.Spans[0].Name != "quorum-read k1" || snap.Spans[1].Name != "2pc-prepare" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	for _, sp := range snap.Spans {
		if sp.End < sp.Start {
			t.Errorf("span %s not closed: %+v", sp.Name, sp)
		}
	}
	if tr.Finished() != 1 {
		t.Errorf("finished = %d", tr.Finished())
	}
	// Double finish is a no-op.
	trace.Finish(errors.New("again"), 99)
	if tr.Finished() != 1 {
		t.Error("double finish recorded twice")
	}
	if !strings.Contains(FormatTrace(snap), "2pc-prepare") {
		t.Error("FormatTrace lost a span")
	}
}

// TestTraceConcurrentSpans opens spans from several goroutines, as a
// parallel quorum fan-out does; -race checks the locking.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	trace := tr.Start("lookup")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				trace.StartSpan("rpc").End()
			}
		}()
	}
	wg.Wait()
	trace.Finish(nil, 0)
	if got := len(tr.Recent()[0].Spans); got != 400 {
		t.Errorf("spans = %d, want 400", got)
	}
}

// TestTracerRing checks the ring buffer wraps, keeping the newest
// traces in oldest-first order.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 3})
	for i := 0; i < 5; i++ {
		trace := tr.Start(string(rune('a' + i)))
		trace.Finish(nil, i)
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent = %d", len(recent))
	}
	if recent[0].Op != "c" || recent[2].Op != "e" {
		t.Errorf("ring order: %s %s %s", recent[0].Op, recent[1].Op, recent[2].Op)
	}
}

// TestTracerSlowHook checks the slow-op threshold fires the hook with
// the finished trace.
func TestTracerSlowHook(t *testing.T) {
	var got []TraceSnapshot
	tr := NewTracer(TracerConfig{
		SlowOp: time.Nanosecond, // everything is slow
		OnSlow: func(s TraceSnapshot) { got = append(got, s) },
	})
	trace := tr.Start("update")
	trace.Finish(errors.New("boom"), 3)
	if len(got) != 1 || got[0].Op != "update" || got[0].Err != "boom" {
		t.Fatalf("slow hook got %+v", got)
	}
	if tr.Slow() != 1 {
		t.Errorf("slow count = %d", tr.Slow())
	}
}

// TestNilSafety: every entry point must no-op on nil receivers so
// uninstrumented suites need no conditionals.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("op")
	if trace != nil {
		t.Fatal("nil tracer produced a trace")
	}
	sp := trace.StartSpan("x") // nil trace
	sp.End()
	trace.Finish(nil, 1)
	if tr.Recent() != nil || tr.Finished() != 0 || tr.Slow() != 0 {
		t.Error("nil tracer returned data")
	}
	var o *Observer
	o.OpDone("lookup", time.Second, 1, nil)
	o.PhaseDone("prepare", time.Second)
	o.DeleteObserved(1, 2, 3, 4)
	if o.StartTrace("x") != nil || o.Tracer() != nil {
		t.Error("nil observer produced a trace")
	}
	if o.MessagesPerOp("lookup") != 0 || o.ProbesPerDelete() != 0 {
		t.Error("nil observer returned data")
	}
	if s := o.OpLatency("lookup"); s.Count != 0 {
		t.Error("nil observer returned a histogram")
	}
}

// TestObserverCounts checks the derived per-op gauges.
func TestObserverCounts(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	o.OpDone("lookup", time.Millisecond, 4, nil)
	o.OpDone("lookup", time.Millisecond, 6, errors.New("x"))
	o.DeleteObserved(3, 2, 1, 0)
	o.DeleteObserved(5, 2, 0, 1)
	if got := o.MessagesPerOp("lookup"); got != 5 {
		t.Errorf("messages/op = %v, want 5", got)
	}
	if got := o.ProbesPerDelete(); got != 4 {
		t.Errorf("probes/delete = %v, want 4", got)
	}
	if got := o.OpCounts()["lookup"]; got != 2 {
		t.Errorf("lookup ops = %d", got)
	}
	if got := o.OpLatency("lookup"); got.Count != 2 {
		t.Errorf("lookup histogram count = %d", got.Count)
	}
}
