package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-bucket layout: bound i is 1µs<<i,
// observations land in the smallest bucket whose bound they do not
// exceed, and out-of-range durations land in bucket 0 / overflow.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly bound 0
		{time.Microsecond + time.Nanosecond, 1}, // just over bound 0
		{2 * time.Microsecond, 1},               // exactly bound 1
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},      // 1024µs = 1µs<<10
		{1025 * time.Microsecond, 11},
		{time.Microsecond << 26, numFinite - 1}, // largest finite bound
		{time.Microsecond<<26 + time.Nanosecond, numFinite}, // overflow
		{time.Hour, numFinite},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if b := BucketBound(0); b != time.Microsecond {
		t.Errorf("BucketBound(0) = %v", b)
	}
	if b := BucketBound(10); b != 1024*time.Microsecond {
		t.Errorf("BucketBound(10) = %v", b)
	}
	if b := BucketBound(numFinite); b >= 0 {
		t.Errorf("overflow bucket bound = %v, want negative (+Inf)", b)
	}
	// Bounds strictly increase.
	for i := 1; i < numFinite; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Errorf("bounds not increasing at %d", i)
		}
	}
}

// TestHistogramObserve checks counts, sum, and mean.
func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(3 * time.Microsecond) // bucket 2
	h.Observe(3 * time.Microsecond) // bucket 2
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 7*time.Microsecond {
		t.Errorf("sum = %v", s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[2] != 2 {
		t.Errorf("counts = %v", s.Counts[:4])
	}
	if m := s.Mean(); m != 7*time.Microsecond/3 {
		t.Errorf("mean = %v", m)
	}
	if q := s.Quantile(0.5); q != 4*time.Microsecond {
		t.Errorf("p50 bound = %v, want 4µs", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// -race verifies the atomics, the totals verify no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestHistogramMerge checks that merging snapshots is bucket-exact.
func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Millisecond)
	b.Observe(time.Millisecond)
	b.Observe(time.Second)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.Sum != time.Microsecond+2*time.Millisecond+time.Second {
		t.Errorf("merged sum = %v", m.Sum)
	}
	if m.Counts[bucketFor(time.Millisecond)] != 2 {
		t.Errorf("merged ms bucket = %d, want 2", m.Counts[bucketFor(time.Millisecond)])
	}
	// Merge with an empty snapshot is the identity.
	id := a.Snapshot().Merge(HistogramSnapshot{})
	if id != a.Snapshot() {
		t.Error("merge with zero snapshot changed the histogram")
	}
}

// TestHistogramVec checks lazy label creation and concurrent access.
func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.With("lookup").Observe(time.Microsecond)
				v.With("insert").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Labels(); len(got) != 2 || got[0] != "insert" || got[1] != "lookup" {
		t.Errorf("labels = %v", got)
	}
	if s := v.Snapshot()["lookup"]; s.Count != 400 {
		t.Errorf("lookup count = %d", s.Count)
	}
}

// TestCounterVec checks lazy creation and concurrent adds.
func TestCounterVec(t *testing.T) {
	v := NewCounterVec()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				v.Add("ops", 1)
			}
		}()
	}
	wg.Wait()
	if got := v.Get("ops"); got != 1000 {
		t.Errorf("ops = %d", got)
	}
	if got := v.Get("absent"); got != 0 {
		t.Errorf("absent = %d", got)
	}
}
