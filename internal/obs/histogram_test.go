package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-bucket layout: bound i is 1µs<<i,
// observations land in the smallest bucket whose bound they do not
// exceed, and out-of-range durations land in bucket 0 / overflow.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly bound 0
		{time.Microsecond + time.Nanosecond, 1}, // just over bound 0
		{2 * time.Microsecond, 1},               // exactly bound 1
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10}, // 1024µs = 1µs<<10
		{1025 * time.Microsecond, 11},
		{time.Microsecond << 26, numFinite - 1},             // largest finite bound
		{time.Microsecond<<26 + time.Nanosecond, numFinite}, // overflow
		{time.Hour, numFinite},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if b := BucketBound(0); b != time.Microsecond {
		t.Errorf("BucketBound(0) = %v", b)
	}
	if b := BucketBound(10); b != 1024*time.Microsecond {
		t.Errorf("BucketBound(10) = %v", b)
	}
	if b := BucketBound(numFinite); b >= 0 {
		t.Errorf("overflow bucket bound = %v, want negative (+Inf)", b)
	}
	// Bounds strictly increase.
	for i := 1; i < numFinite; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Errorf("bounds not increasing at %d", i)
		}
	}
}

// TestHistogramObserve checks counts, sum, and mean.
func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(3 * time.Microsecond) // bucket 2
	h.Observe(3 * time.Microsecond) // bucket 2
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 7*time.Microsecond {
		t.Errorf("sum = %v", s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[2] != 2 {
		t.Errorf("counts = %v", s.Counts[:4])
	}
	if m := s.Mean(); m != 7*time.Microsecond/3 {
		t.Errorf("mean = %v", m)
	}
	if q := s.Quantile(0.5); q != 4*time.Microsecond {
		t.Errorf("p50 bound = %v, want 4µs", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// -race verifies the atomics, the totals verify no observation is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestHistogramMerge checks that merging snapshots is bucket-exact.
func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Millisecond)
	b.Observe(time.Millisecond)
	b.Observe(time.Second)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.Sum != time.Microsecond+2*time.Millisecond+time.Second {
		t.Errorf("merged sum = %v", m.Sum)
	}
	if m.Counts[bucketFor(time.Millisecond)] != 2 {
		t.Errorf("merged ms bucket = %d, want 2", m.Counts[bucketFor(time.Millisecond)])
	}
	// Merge with an empty snapshot is the identity.
	id := a.Snapshot().Merge(HistogramSnapshot{})
	if id != a.Snapshot() {
		t.Error("merge with zero snapshot changed the histogram")
	}
}

// TestQuantileOverflowReportsMax is the regression test for the
// overflow-clamp bug: a histogram whose observations all land in the
// +Inf bucket used to report its quantiles as the largest finite bucket
// bound (~67s) no matter how far past it the tail actually ran, so an
// SLO p999 verdict could pass on a run whose tail was minutes long.
// Every quantile of an all-overflow histogram must report the exact
// observed maximum.
func TestQuantileOverflowReportsMax(t *testing.T) {
	var h Histogram
	over := BucketBound(numFinite-1) + time.Second
	for i := 0; i < 10; i++ {
		h.Observe(over + time.Duration(i)*time.Minute)
	}
	max := over + 9*time.Minute
	s := h.Snapshot()
	if s.Max != max {
		t.Fatalf("snapshot max = %v, want %v", s.Max, max)
	}
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); got != max {
			t.Errorf("all-overflow Quantile(%v) = %v, want observed max %v", q, got, max)
		}
	}
	// Mixed: p50 stays in a finite bucket, the tail reports the max.
	var m Histogram
	for i := 0; i < 99; i++ {
		m.Observe(time.Millisecond)
	}
	m.Observe(2 * time.Hour)
	ms := m.Snapshot()
	if got := ms.Quantile(0.5); got != BucketBound(bucketFor(time.Millisecond)) {
		t.Errorf("mixed p50 = %v", got)
	}
	if got := ms.Quantile(0.999); got != 2*time.Hour {
		t.Errorf("mixed p999 = %v, want 2h", got)
	}
	// A hand-built snapshot with overflow counts but no Max falls back
	// to the largest finite bound (the overflow bucket's lower edge)
	// rather than reporting zero.
	var hand HistogramSnapshot
	hand.Count = 1
	hand.Counts[numFinite] = 1
	if got, want := hand.Quantile(0.99), BucketBound(numFinite-1); got != want {
		t.Errorf("hand-built overflow quantile = %v, want %v", got, want)
	}
}

// TestQuantileBucketEdges pins Quantile at exact bucket boundaries:
// exact powers of two sit in their own bucket (a quantile there reports
// the bound itself), sub-µs observations report the 1µs bound, and Max
// survives Merge.
func TestQuantileBucketEdges(t *testing.T) {
	// Exact powers of two: an observation at 1µs<<i reports bound i.
	for i := 0; i < numFinite; i++ {
		var h Histogram
		h.Observe(time.Microsecond << i)
		if got := h.Snapshot().Quantile(1); got != BucketBound(i) {
			t.Errorf("Quantile(1) of exactly 1µs<<%d = %v, want %v", i, got, BucketBound(i))
		}
	}
	// Sub-µs and negative observations land in bucket 0 and report 1µs.
	var sub Histogram
	sub.Observe(10 * time.Nanosecond)
	sub.Observe(-time.Second)
	if got := sub.Snapshot().Quantile(1); got != time.Microsecond {
		t.Errorf("sub-µs Quantile(1) = %v, want 1µs", got)
	}
	if got := sub.Snapshot().Max; got != 10*time.Nanosecond {
		t.Errorf("sub-µs max = %v", got)
	}
	// Max merges as the larger of the two sides, both ways.
	var a, b Histogram
	a.Observe(time.Hour * 24)
	b.Observe(time.Millisecond)
	if got := a.Snapshot().Merge(b.Snapshot()).Max; got != 24*time.Hour {
		t.Errorf("merged max = %v", got)
	}
	if got := b.Snapshot().Merge(a.Snapshot()).Max; got != 24*time.Hour {
		t.Errorf("merged max (reversed) = %v", got)
	}
}

// TestMergePreservesQuantileBounds is a property test over random
// histogram pairs: the merged snapshot's quantile at any q is never
// below the smaller of the two parts' quantiles, and never above
// max(part quantiles, merged Max). The upper bound needs the merged Max
// term because merging can push a rank into the overflow bucket — where
// the exact maximum (possibly from a part whose own q-quantile was
// finite) is the honest answer, not either part's finite bound. When the
// merged quantile stays finite it must sit within the parts' bounds
// exactly.
func TestMergePreservesQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1983))
	quantiles := []float64{0.01, 0.5, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 200; trial++ {
		var a, b Histogram
		fill := func(h *Histogram) {
			n := 1 + rng.Intn(64)
			for i := 0; i < n; i++ {
				// Spread across the full range, overflow included.
				d := time.Duration(rng.Int63n(int64(90 * time.Second)))
				if rng.Intn(10) == 0 {
					d += BucketBound(numFinite - 1) // force overflow
				}
				h.Observe(d)
			}
		}
		fill(&a)
		fill(&b)
		sa, sb := a.Snapshot(), b.Snapshot()
		m := sa.Merge(sb)
		if m.Count != sa.Count+sb.Count {
			t.Fatalf("trial %d: merged count %d != %d+%d", trial, m.Count, sa.Count, sb.Count)
		}
		// The merged max is exactly the larger side's max.
		wantMax := sa.Max
		if sb.Max > wantMax {
			wantMax = sb.Max
		}
		if m.Max != wantMax {
			t.Fatalf("trial %d: merged max %v, want %v", trial, m.Max, wantMax)
		}
		for _, q := range quantiles {
			qa, qb, qm := sa.Quantile(q), sb.Quantile(q), m.Quantile(q)
			lo, hi := qa, qb
			if lo > hi {
				lo, hi = hi, lo
			}
			if qm < lo {
				t.Fatalf("trial %d: merged Quantile(%v) = %v below both parts (lo %v)",
					trial, q, qm, lo)
			}
			if qm <= BucketBound(numFinite-1) && qm > hi {
				t.Fatalf("trial %d: finite merged Quantile(%v) = %v above both parts (hi %v)",
					trial, q, qm, hi)
			}
			if qm > hi && qm != m.Max {
				t.Fatalf("trial %d: merged Quantile(%v) = %v above both parts but not the merged max %v",
					trial, q, qm, m.Max)
			}
		}
	}
}

// TestHistogramVec checks lazy label creation and concurrent access.
func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.With("lookup").Observe(time.Microsecond)
				v.With("insert").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Labels(); len(got) != 2 || got[0] != "insert" || got[1] != "lookup" {
		t.Errorf("labels = %v", got)
	}
	if s := v.Snapshot()["lookup"]; s.Count != 400 {
		t.Errorf("lookup count = %d", s.Count)
	}
}

// TestCounterVec checks lazy creation and concurrent adds.
func TestCounterVec(t *testing.T) {
	v := NewCounterVec()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				v.Add("ops", 1)
			}
		}()
	}
	wg.Wait()
	if got := v.Get("ops"); got != 1000 {
		t.Errorf("ops = %d", got)
	}
	if got := v.Get("absent"); got != 0 {
		t.Errorf("absent = %d", got)
	}
}
