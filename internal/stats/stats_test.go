package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptyAccumulator(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Max() != 0 || a.StdDev() != 0 {
		t.Error("zero-value accumulator should report zeros")
	}
}

func TestKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if !almost(a.Mean(), 5) {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	if !almost(a.StdDev(), 2) {
		t.Errorf("stddev = %v, want 2", a.StdDev())
	}
	if a.Max() != 9 || a.Min() != 2 || a.Count() != 8 {
		t.Errorf("max/min/count = %v/%v/%v", a.Max(), a.Min(), a.Count())
	}
}

func TestSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(-3)
	if a.Mean() != -3 || a.Max() != -3 || a.Min() != -3 || a.StdDev() != 0 {
		t.Error("single observation stats wrong")
	}
}

func TestAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(4, 3)
	for i := 0; i < 3; i++ {
		b.Add(4)
	}
	if a.Count() != b.Count() || !almost(a.Mean(), b.Mean()) {
		t.Error("AddN should equal repeated Add")
	}
}

func TestMergeMatchesCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var left, right, all Accumulator
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()*3 + 1
		all.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.Count() != all.Count() {
		t.Fatalf("count %d != %d", left.Count(), all.Count())
	}
	if math.Abs(left.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v != %v", left.Mean(), all.Mean())
	}
	if math.Abs(left.StdDev()-all.StdDev()) > 1e-9 {
		t.Errorf("merged stddev %v != %v", left.StdDev(), all.StdDev())
	}
	if left.Max() != all.Max() || left.Min() != all.Min() {
		t.Error("merged extrema wrong")
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, empty Accumulator
	a.Add(1)
	a.Add(3)
	before := a.Summarize()
	a.Merge(&empty)
	if a.Summarize() != before {
		t.Error("merging an empty accumulator should be a no-op")
	}
	var b Accumulator
	b.Merge(&a)
	if b.Summarize() != before {
		t.Error("merging into an empty accumulator should copy")
	}
}

func TestSummaryString(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 1, 1, 9} {
		a.Add(x)
	}
	// Format mirrors Figure 15 rows: avg max stddev.
	if got := a.Summarize().String(); got != "3.00 9 3.46" {
		t.Errorf("summary string = %q", got)
	}
}

// Property: mean is bounded by min and max, and stddev is non-negative.
func TestAccumulatorBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		anyFinite := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Quick generates huge magnitudes; damp to keep m2 finite.
			a.Add(math.Mod(x, 1e6))
			anyFinite = true
		}
		if !anyFinite {
			return true
		}
		return a.Mean() >= a.Min()-1e-6 && a.Mean() <= a.Max()+1e-6 && a.StdDev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{0, 0, 1, 1, 1, 2, 5} {
		h.Add(v)
	}
	if h.Total() != 7 || h.Count(1) != 3 || h.Count(4) != 0 {
		t.Error("histogram counts wrong")
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("median = %d, want 1", q)
	}
	if q := h.Quantile(1.0); q != 5 {
		t.Errorf("p100 = %d, want 5", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Total() != 0 {
		t.Error("empty histogram should report zeros")
	}
}
