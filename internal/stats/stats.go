// Package stats provides the streaming accumulators used to reproduce the
// paper's simulation tables (Figures 14 and 15): average, maximum, and
// standard deviation of per-operation statistics.
package stats

import (
	"fmt"
	"math"
)

// Accumulator computes running mean, maximum, and population standard
// deviation using Welford's online algorithm. The zero value is ready to
// use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	max  float64
	min  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.max = x
		a.min = x
	} else {
		if x > a.max {
			a.max = x
		}
		if x < a.min {
			a.min = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN records n copies of the observation x.
func (a *Accumulator) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		a.Add(x)
	}
}

// Count returns the number of observations recorded.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.mean
}

// Max returns the largest observation, or 0 with no observations.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Min returns the smallest observation, or 0 with no observations.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two observations.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// Merge folds the observations of o into a. The result is as if every
// observation seen by either accumulator had been Added to a single one.
func (a *Accumulator) Merge(o *Accumulator) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	n := a.n + o.n
	delta := o.mean - a.mean
	mean := a.mean + delta*float64(o.n)/float64(n)
	m2 := a.m2 + o.m2 + delta*delta*float64(a.n)*float64(o.n)/float64(n)
	if o.max > a.max {
		a.max = o.max
	}
	if o.min < a.min {
		a.min = o.min
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// Summary is a frozen snapshot of an Accumulator, convenient for tables.
type Summary struct {
	Count  int64
	Avg    float64
	Max    float64
	StdDev float64
}

// Summarize returns a snapshot of the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{
		Count:  a.Count(),
		Avg:    a.Mean(),
		Max:    a.Max(),
		StdDev: a.StdDev(),
	}
}

// String renders the summary the way the paper's Figure 15 prints rows:
// "avg max stddev".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f %.0f %.2f", s.Avg, s.Max, s.StdDev)
}

// Histogram counts integer-valued observations into unit-wide buckets,
// used to inspect the tail of the coalescing statistics.
type Histogram struct {
	counts map[int]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Add records one observation of the integer value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations of exactly v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns the smallest value v such that at least fraction q of
// observations are <= v. q must be in (0, 1]. Returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	lo, hi := math.MaxInt, math.MinInt
	for v := range h.counts {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	need := int64(math.Ceil(q * float64(h.total)))
	var cum int64
	for v := lo; v <= hi; v++ {
		cum += h.counts[v]
		if cum >= need {
			return v
		}
	}
	return hi
}
