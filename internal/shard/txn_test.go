package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestCrossShardTxnAtomicCommit: a transaction writing to two shards
// commits both writes together.
func TestCrossShardTxnAtomicCommit(t *testing.T) {
	r, _ := newTestRouter(t, []string{"m"}, 1)
	ctx := context.Background()

	err := r.RunInTxn(ctx, func(x *Txn) error {
		if err := x.Insert(ctx, "a", "left"); err != nil {
			return err
		}
		return x.Insert(ctx, "x", "right")
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ k, v string }{{"a", "left"}, {"x", "right"}} {
		v, found, err := r.Lookup(ctx, tc.k)
		if err != nil || !found || v != tc.v {
			t.Fatalf("Lookup(%q) = (%q, %v, %v), want %q", tc.k, v, found, err, tc.v)
		}
	}
	if r.Stats().CrossShard == 0 {
		t.Fatal("cross-shard txn not counted")
	}
}

// TestCrossShardTxnAtomicAbort: a transaction that fails after writing
// to both shards leaves no trace in either.
func TestCrossShardTxnAtomicAbort(t *testing.T) {
	r, _ := newTestRouter(t, []string{"m"}, 1)
	ctx := context.Background()
	boom := errors.New("boom")

	err := r.RunInTxn(ctx, func(x *Txn) error {
		if err := x.Insert(ctx, "a", "left"); err != nil {
			return err
		}
		if err := x.Insert(ctx, "x", "right"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunInTxn = %v, want boom", err)
	}
	for _, k := range []string{"a", "x"} {
		if _, found, err := r.Lookup(ctx, k); err != nil || found {
			t.Fatalf("Lookup(%q) after abort = (%v, %v), want absent", k, found, err)
		}
	}
	if n, err := r.Count(ctx); err != nil || n != 0 {
		t.Fatalf("Count after abort = (%d, %v), want 0", n, err)
	}
}

// TestCrossShardTxnReadsOwnWrites: reads inside the transaction see
// earlier writes from the same transaction, on whichever shard.
func TestCrossShardTxnReadsOwnWrites(t *testing.T) {
	r, _ := newTestRouter(t, []string{"m"}, 1)
	ctx := context.Background()

	err := r.RunInTxn(ctx, func(x *Txn) error {
		if err := x.Insert(ctx, "a", "1"); err != nil {
			return err
		}
		if err := x.Insert(ctx, "x", "2"); err != nil {
			return err
		}
		for _, tc := range []struct{ k, v string }{{"a", "1"}, {"x", "2"}} {
			v, found, err := x.Lookup(ctx, tc.k)
			if err != nil {
				return err
			}
			if !found || v != tc.v {
				return fmt.Errorf("in-txn Lookup(%q) = (%q, %v), want %q", tc.k, v, found, tc.v)
			}
		}
		// A stitched scan inside the transaction sees both writes.
		kvs, err := x.Scan(ctx, "", 0)
		if err != nil {
			return err
		}
		if len(kvs) != 2 || kvs[0].Key != "a" || kvs[1].Key != "x" {
			return fmt.Errorf("in-txn Scan = %v", kvs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCountConsistentUnderConcurrentWrites: Count and Scan taken in the
// same transaction always agree, and cross-shard counts never observe a
// half-applied multi-shard transaction.
func TestCountConsistentUnderConcurrentWrites(t *testing.T) {
	r, _ := newTestRouter(t, []string{"m"}, 1, WithParallelStitch(true))
	ctx := context.Background()

	// Writers upsert/delete pairs that straddle the split atomically:
	// (a<i>, x<i>) are always inserted and deleted together, so any
	// consistent cut holds an even number of entries.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := fmt.Sprintf("a%d-%d", w, i%3)
				hi := fmt.Sprintf("x%d-%d", w, i%3)
				err := r.RunInTxn(ctx, func(x *Txn) error {
					_, found, err := x.Lookup(ctx, lo)
					if err != nil {
						return err
					}
					if found {
						if err := x.Delete(ctx, lo); err != nil {
							return err
						}
						return x.Delete(ctx, hi)
					}
					if err := x.Insert(ctx, lo, "v"); err != nil {
						return err
					}
					return x.Insert(ctx, hi, "v")
				})
				if err != nil {
					// Wait-die losses surface as retries inside RunInTxn;
					// anything else is a real failure.
					select {
					case <-stop:
						return
					default:
						t.Errorf("writer txn: %v", err)
						return
					}
				}
			}
		}(w)
	}

	for round := 0; round < 20; round++ {
		err := r.RunInTxn(ctx, func(x *Txn) error {
			n, err := x.Count(ctx)
			if err != nil {
				return err
			}
			kvs, err := x.Scan(ctx, "", 0)
			if err != nil {
				return err
			}
			if n != len(kvs) {
				return fmt.Errorf("Count %d != Scan length %d", n, len(kvs))
			}
			if n%2 != 0 {
				return fmt.Errorf("observed half-applied cross-shard txn: count %d", n)
			}
			return nil
		})
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
