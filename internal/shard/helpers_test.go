package shard

import (
	"context"
	"fmt"
	"testing"

	"repdir/internal/core"
	"repdir/internal/keyspace"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
)

// pair runs every operation against a sharded router and an unsharded
// reference suite over the same logical directory; the equivalence suite
// asserts the results are identical.
type pair struct {
	router *Router
	ref    *core.Suite
	locals [][]*transport.Local // router replicas, by shard
}

// newShardSuite builds one 3-replica 2-2 suite whose members are named
// s<i>r0..2.
func newShardSuite(t testing.TB, i int, seed int64) (*core.Suite, []*transport.Local) {
	t.Helper()
	dirs := make([]rep.Directory, 3)
	locals := make([]*transport.Local, 3)
	for j := range dirs {
		l := transport.NewLocal(rep.New(fmt.Sprintf("s%dr%d", i, j)))
		locals[j] = l
		dirs[j] = l
	}
	cfg := quorum.NewUniform(dirs, 2, 2)
	s, err := core.NewSuite(cfg, core.WithSelector(quorum.NewRandomSelector(cfg, seed+int64(i))))
	if err != nil {
		t.Fatal(err)
	}
	return s, locals
}

// newTestRouter builds a router with one 3-replica suite per shard.
func newTestRouter(t testing.TB, splits []string, seed int64, opts ...Option) (*Router, [][]*transport.Local) {
	t.Helper()
	m, err := NewMap(splits...)
	if err != nil {
		t.Fatal(err)
	}
	suites := make([]*core.Suite, m.Shards())
	locals := make([][]*transport.Local, m.Shards())
	for i := range suites {
		suites[i], locals[i] = newShardSuite(t, i, seed)
	}
	r, err := NewRouter(m, suites, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r, locals
}

// newPair builds the router plus an unsharded reference suite.
func newPair(t testing.TB, splits []string, seed int64, opts ...Option) *pair {
	t.Helper()
	r, locals := newTestRouter(t, splits, seed, opts...)
	dirs := make([]rep.Directory, 3)
	for j := range dirs {
		dirs[j] = transport.NewLocal(rep.New(fmt.Sprintf("ref%d", j)))
	}
	cfg := quorum.NewUniform(dirs, 2, 2)
	ref, err := core.NewSuite(cfg, core.WithSelector(quorum.NewRandomSelector(cfg, seed+100)))
	if err != nil {
		t.Fatal(err)
	}
	return &pair{router: r, ref: ref, locals: locals}
}

func (p *pair) insert(t testing.TB, key, value string) {
	t.Helper()
	ctx := context.Background()
	if err := p.router.Insert(ctx, key, value); err != nil {
		t.Fatalf("router insert %q: %v", key, err)
	}
	if err := p.ref.Insert(ctx, key, value); err != nil {
		t.Fatalf("reference insert %q: %v", key, err)
	}
}

func (p *pair) insertTuple(t testing.TB, components ...string) {
	t.Helper()
	p.insert(t, keyspace.EncodeTuple(components...).Raw(), fmt.Sprint(components))
}

func (p *pair) update(t testing.TB, key, value string) {
	t.Helper()
	ctx := context.Background()
	if err := p.router.Update(ctx, key, value); err != nil {
		t.Fatalf("router update %q: %v", key, err)
	}
	if err := p.ref.Update(ctx, key, value); err != nil {
		t.Fatalf("reference update %q: %v", key, err)
	}
}

func (p *pair) delete(t testing.TB, key string) {
	t.Helper()
	ctx := context.Background()
	if err := p.router.Delete(ctx, key); err != nil {
		t.Fatalf("router delete %q: %v", key, err)
	}
	if err := p.ref.Delete(ctx, key); err != nil {
		t.Fatalf("reference delete %q: %v", key, err)
	}
}

func sameKVs(a, b []core.KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkOrderedOps runs every ordered operation against both sides over a
// probe grid and fails on the first divergence. probes should cover the
// stored keys, the split points, and values between/outside them.
func checkOrderedOps(t testing.TB, p *pair, probes []string) {
	t.Helper()
	ctx := context.Background()

	gotN, err := p.router.Count(ctx)
	if err != nil {
		t.Fatalf("router Count: %v", err)
	}
	wantN, err := p.ref.Count(ctx)
	if err != nil {
		t.Fatalf("reference Count: %v", err)
	}
	if gotN != wantN {
		t.Fatalf("Count: router %d, reference %d", gotN, wantN)
	}

	limits := []int{0, 1, 2, 100}
	grid := append([]string{""}, probes...)
	for _, a := range grid {
		for _, lim := range limits {
			got, err := p.router.Scan(ctx, a, lim)
			if err != nil {
				t.Fatalf("router Scan(%q,%d): %v", a, lim, err)
			}
			want, err := p.ref.Scan(ctx, a, lim)
			if err != nil {
				t.Fatalf("reference Scan(%q,%d): %v", a, lim, err)
			}
			if !sameKVs(got, want) {
				t.Fatalf("Scan(%q,%d): router %v, reference %v", a, lim, got, want)
			}

			got, err = p.router.ScanReverse(ctx, a, lim)
			if err != nil {
				t.Fatalf("router ScanReverse(%q,%d): %v", a, lim, err)
			}
			want, err = p.ref.ScanReverse(ctx, a, lim)
			if err != nil {
				t.Fatalf("reference ScanReverse(%q,%d): %v", a, lim, err)
			}
			if !sameKVs(got, want) {
				t.Fatalf("ScanReverse(%q,%d): router %v, reference %v", a, lim, got, want)
			}
		}

		gotKV, gotFound, err := p.router.Successor(ctx, a)
		if err != nil {
			t.Fatalf("router Successor(%q): %v", a, err)
		}
		wantKV, wantFound, err := p.ref.Successor(ctx, a)
		if err != nil {
			t.Fatalf("reference Successor(%q): %v", a, err)
		}
		if gotFound != wantFound || gotKV != wantKV {
			t.Fatalf("Successor(%q): router (%v,%v), reference (%v,%v)", a, gotKV, gotFound, wantKV, wantFound)
		}

		gotKV, gotFound, err = p.router.Predecessor(ctx, a)
		if err != nil {
			t.Fatalf("router Predecessor(%q): %v", a, err)
		}
		wantKV, wantFound, err = p.ref.Predecessor(ctx, a)
		if err != nil {
			t.Fatalf("reference Predecessor(%q): %v", a, err)
		}
		if gotFound != wantFound || gotKV != wantKV {
			t.Fatalf("Predecessor(%q): router (%v,%v), reference (%v,%v)", a, gotKV, gotFound, wantKV, wantFound)
		}
	}

	for _, a := range grid {
		for _, u := range grid {
			for _, lim := range []int{0, 2} {
				got, err := p.router.ScanRange(ctx, a, u, lim)
				if err != nil {
					t.Fatalf("router ScanRange(%q,%q,%d): %v", a, u, lim, err)
				}
				want, err := p.ref.ScanRange(ctx, a, u, lim)
				if err != nil {
					t.Fatalf("reference ScanRange(%q,%q,%d): %v", a, u, lim, err)
				}
				if !sameKVs(got, want) {
					t.Fatalf("ScanRange(%q,%q,%d): router %v, reference %v", a, u, lim, got, want)
				}
			}
		}
	}
}
