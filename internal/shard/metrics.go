package shard

import (
	"strconv"
	"sync/atomic"
	"time"

	"repdir/internal/obs"
)

// routerStats instruments the router: point-op routing per shard,
// stitched-op outcomes and latency, traversal fanout (how many shards an
// ordered op touched), and cross-shard transaction counts.
type routerStats struct {
	pointOps  []*obs.CounterVec // per shard, by op
	pointErrs []*obs.CounterVec

	ops     *obs.CounterVec // router transactions, by op
	errs    *obs.CounterVec
	latency *obs.HistogramVec // router transaction latency, by op
	fanout  *obs.CounterVec   // by number of shards touched

	retries    atomic.Uint64
	crossShard atomic.Uint64
}

func newRouterStats(shards int) *routerStats {
	s := &routerStats{
		pointOps:  make([]*obs.CounterVec, shards),
		pointErrs: make([]*obs.CounterVec, shards),
		ops:       obs.NewCounterVec(),
		errs:      obs.NewCounterVec(),
		latency:   obs.NewHistogramVec(),
		fanout:    obs.NewCounterVec(),
	}
	for i := range s.pointOps {
		s.pointOps[i] = obs.NewCounterVec()
		s.pointErrs[i] = obs.NewCounterVec()
	}
	return s
}

// point records a routed point operation's outcome on its owning shard.
func (s *routerStats) point(shard int, op string, err error) {
	s.pointOps[shard].Add(op, 1)
	if err != nil {
		s.pointErrs[shard].Add(op, 1)
	}
}

// done records a finished router transaction.
func (s *routerStats) done(op string, d time.Duration, fanout, attempt int, err error) {
	s.ops.Add(op, 1)
	if err != nil {
		s.errs.Add(op, 1)
	}
	s.latency.With(op).Observe(d)
	s.fanout.Add(strconv.Itoa(fanout), 1)
	if attempt > 0 {
		s.retries.Add(uint64(attempt))
	}
	if fanout >= 2 {
		s.crossShard.Add(1)
	}
}

// RouterStats is a point-in-time snapshot of the router's counters.
type RouterStats struct {
	// PointOps[i][op] counts point operations routed to shard i;
	// PointErrs counts the ones that failed.
	PointOps  []map[string]uint64
	PointErrs []map[string]uint64
	// RouterOps[op] counts router transactions (stitched traversals,
	// counts, and RunInTxn) by operation label.
	RouterOps  map[string]uint64
	RouterErrs map[string]uint64
	// Fanout[n] counts router transactions that touched n shards.
	Fanout map[string]uint64
	// Retries totals retry attempts across router transactions;
	// CrossShard counts transactions that touched two or more shards.
	Retries    uint64
	CrossShard uint64
}

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	s := r.stats
	out := RouterStats{
		PointOps:   make([]map[string]uint64, len(s.pointOps)),
		PointErrs:  make([]map[string]uint64, len(s.pointErrs)),
		RouterOps:  s.ops.Snapshot(),
		RouterErrs: s.errs.Snapshot(),
		Fanout:     s.fanout.Snapshot(),
		Retries:    s.retries.Load(),
		CrossShard: s.crossShard.Load(),
	}
	for i := range s.pointOps {
		out.PointOps[i] = s.pointOps[i].Snapshot()
		out.PointErrs[i] = s.pointErrs[i].Snapshot()
	}
	return out
}

// OpLatency returns the latency distribution of router transactions with
// the given operation label.
func (r *Router) OpLatency(op string) obs.HistogramSnapshot {
	return r.stats.latency.With(op).Snapshot()
}

// RegisterMetrics exposes the router's counters on a metrics registry
// under the repdir_shard_* namespace.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	s := r.stats
	reg.CounterVec("repdir_shard_point_ops_total",
		"Point operations routed to each shard, by operation.",
		[]string{"shard", "op"}, func() []obs.Sample {
			var out []obs.Sample
			for i, vec := range s.pointOps {
				shard := strconv.Itoa(i)
				for op, n := range vec.Snapshot() {
					out = append(out, obs.Sample{Labels: []string{shard, op}, Value: float64(n)})
				}
			}
			return out
		})
	reg.CounterVec("repdir_shard_point_op_errors_total",
		"Failed point operations per shard, by operation.",
		[]string{"shard", "op"}, func() []obs.Sample {
			var out []obs.Sample
			for i, vec := range s.pointErrs {
				shard := strconv.Itoa(i)
				for op, n := range vec.Snapshot() {
					out = append(out, obs.Sample{Labels: []string{shard, op}, Value: float64(n)})
				}
			}
			return out
		})
	reg.CounterMap("repdir_shard_router_ops_total",
		"Router transactions (stitched traversals, counts, cross-shard txns), by operation.",
		"op", s.ops.Snapshot)
	reg.CounterMap("repdir_shard_router_op_errors_total",
		"Failed router transactions, by operation.",
		"op", s.errs.Snapshot)
	reg.CounterMap("repdir_shard_traversal_fanout_total",
		"Router transactions by how many shards they touched.",
		"shards", s.fanout.Snapshot)
	reg.Counter("repdir_shard_txn_retries_total",
		"Retry attempts across router transactions.", s.retries.Load)
	reg.Counter("repdir_shard_cross_shard_txns_total",
		"Router transactions that touched two or more shards.", s.crossShard.Load)
	reg.HistogramVec("repdir_shard_router_latency",
		"Router transaction latency, by operation.",
		[]string{"op"}, func() []obs.HistSample {
			var out []obs.HistSample
			for op, snap := range s.latency.Snapshot() {
				out = append(out, obs.HistSample{Labels: []string{op}, Snap: snap})
			}
			return out
		})
}
