package shard

import (
	"context"
	"fmt"
	"testing"

	"repdir/internal/core"
)

func TestRouterValidation(t *testing.T) {
	m, err := NewMap("m")
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := newShardSuite(t, 0, 1)

	// Wrong suite count.
	if _, err := NewRouter(m, []*core.Suite{s0}); err == nil {
		t.Fatal("router accepted one suite for two shards")
	}

	// Duplicate representative names across shards.
	dup0, _ := newShardSuite(t, 7, 1)
	dup1, _ := newShardSuite(t, 7, 2)
	if _, err := NewRouter(m, []*core.Suite{dup0, dup1}); err == nil {
		t.Fatal("router accepted duplicate member names across shards")
	}
}

func TestRouterPointOpRouting(t *testing.T) {
	r, _ := newTestRouter(t, []string{"m"}, 1)
	ctx := context.Background()

	if err := r.Insert(ctx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(ctx, "x", "2"); err != nil {
		t.Fatal(err)
	}
	// The split key itself routes to the right shard.
	if err := r.Insert(ctx, "m", "3"); err != nil {
		t.Fatal(err)
	}

	// Each key landed in exactly its owning suite.
	if n, err := r.Suites()[0].Count(ctx); err != nil || n != 1 {
		t.Fatalf("shard 0 count = (%d, %v), want 1", n, err)
	}
	if n, err := r.Suites()[1].Count(ctx); err != nil || n != 2 {
		t.Fatalf("shard 1 count = (%d, %v), want 2", n, err)
	}

	if v, found, err := r.Lookup(ctx, "m"); err != nil || !found || v != "3" {
		t.Fatalf("Lookup(m) = (%q, %v, %v)", v, found, err)
	}
	if err := r.Update(ctx, "a", "1b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if _, found, err := r.Lookup(ctx, "x"); err != nil || found {
		t.Fatalf("Lookup(x) after delete = (%v, %v)", found, err)
	}
	if _, _, err := r.Lookup(ctx, ""); err == nil {
		t.Fatal("empty key accepted")
	}

	st := r.Stats()
	if st.PointOps[0][core.OpInsert] != 1 || st.PointOps[1][core.OpInsert] != 2 {
		t.Fatalf("point insert stats: %v", st.PointOps)
	}
	if st.PointOps[0][core.OpUpdate] != 1 || st.PointOps[1][core.OpDelete] != 1 {
		t.Fatalf("point update/delete stats: %v", st.PointOps)
	}
}

func TestRouterStatsAndMetrics(t *testing.T) {
	r, _ := newTestRouter(t, []string{"m"}, 1)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "x", "y"} {
		if err := r.Insert(ctx, k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Scan(ctx, "", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Count(ctx); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.RouterOps[core.OpScan] != 1 || st.RouterOps[core.OpCount] != 1 {
		t.Fatalf("router op stats: %v", st.RouterOps)
	}
	// Both the scan and the count touched both shards.
	if st.CrossShard != 2 {
		t.Fatalf("cross-shard txns = %d, want 2", st.CrossShard)
	}
	if st.Fanout["2"] != 2 {
		t.Fatalf("fanout stats: %v", st.Fanout)
	}
	if r.OpLatency(core.OpScan).Count == 0 {
		t.Fatal("scan latency histogram empty")
	}
}

// TestRouterRetriesAroundCrashedReplica: losing a minority replica in
// one shard must not fail point ops or stitched traversals.
func TestRouterRetriesAroundCrashedReplica(t *testing.T) {
	r, locals := newTestRouter(t, []string{"m"}, 1)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "x", "y"} {
		if err := r.Insert(ctx, k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	locals[0][0].Crash()
	defer locals[0][0].Restart()

	if _, _, err := r.Lookup(ctx, "a"); err != nil {
		t.Fatalf("lookup with crashed minority: %v", err)
	}
	out, err := r.Scan(ctx, "", 0)
	if err != nil {
		t.Fatalf("scan with crashed minority: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("scan = %v, want 4 entries", out)
	}
	if n, err := r.Count(ctx); err != nil || n != 4 {
		t.Fatalf("count with crashed minority = (%d, %v), want 4", n, err)
	}
}

// TestRouterSurfacesDownShard: when a whole shard loses its quorum, an
// ordered traversal that needs it must fail loudly, never skip it.
func TestRouterSurfacesDownShard(t *testing.T) {
	r, locals := newTestRouter(t, []string{"m"}, 1)
	ctx := context.Background()
	for _, k := range []string{"a", "x"} {
		if err := r.Insert(ctx, k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range locals[1] {
		l.Crash()
	}

	if _, err := r.Scan(ctx, "", 0); err == nil {
		t.Fatal("scan with shard 1 down returned no error")
	}
	if _, err := r.Count(ctx); err == nil {
		t.Fatal("count with shard 1 down returned no error")
	}
	// Successor("a") lives entirely in shard 1 territory after the
	// fallthrough: it must error, not report "no successor".
	if _, found, err := r.Successor(ctx, "b"); err == nil {
		t.Fatalf("successor with shard 1 down = found %v, want error", found)
	}
	// But operations confined to the healthy shard still work.
	if v, found, err := r.Lookup(ctx, "a"); err != nil || !found || v != "v" {
		t.Fatalf("lookup in healthy shard = (%q, %v, %v)", v, found, err)
	}
	if out, err := r.ScanRange(ctx, "", "m", 0); err != nil || len(out) != 1 {
		t.Fatalf("range scan confined to healthy shard = (%v, %v)", out, err)
	}
}

// TestManyShards exercises a wider fanout than the usual two.
func TestManyShards(t *testing.T) {
	splits := []string{"k10", "k20", "k30", "k40", "k50", "k60", "k70"}
	p := newPair(t, splits, 9)
	var probes []string
	for i := 0; i < 80; i += 5 {
		k := fmt.Sprintf("k%02d", i)
		p.insert(t, k, "v")
		probes = append(probes, k)
	}
	for i := 10; i < 80; i += 20 {
		p.delete(t, fmt.Sprintf("k%02d", i))
	}
	checkOrderedOps(t, p, append(probes, splits...))
}
