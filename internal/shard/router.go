package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repdir/internal/core"
	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/txn"
	"repdir/internal/version"
)

// Router serves the directory API over a sharded keyspace: one
// core.Suite per range of the Map. It is safe for concurrent use.
//
// Point operations (Lookup, Insert, Update, Delete) are delegated to the
// owning suite, which runs them with its own retry loop and counters.
// Ordered operations (Scan and friends, Count, Predecessor, Successor)
// and RunInTxn run as router transactions: one txn.Txn shared by a
// core.Tx per touched shard, committed with a single two-phase commit,
// so a cross-shard result is as atomic as a single-suite one.
type Router struct {
	m   *Map
	ids *txn.IDSource

	// mu guards suites: online reconfiguration swaps a shard's suite
	// with SetSuite while traffic is in flight. Operations snapshot the
	// slice once at the top, so an individual operation sees one
	// coherent assignment end to end.
	mu     sync.RWMutex
	suites []*core.Suite

	maxRetries int
	parallel   bool
	budget     *core.RetryBudget
	stats      *routerStats
}

// Option configures a Router.
type Option interface {
	apply(*Router)
}

type idsOption struct{ ids *txn.IDSource }

func (o idsOption) apply(r *Router) { r.ids = o.ids }

// WithIDSource sets the transaction ID source for router transactions.
// It must use a node tag distinct from every suite's own source, so
// wait-die ages order consistently across router and suite transactions.
func WithIDSource(ids *txn.IDSource) Option { return idsOption{ids: ids} }

type retriesOption struct{ n int }

func (o retriesOption) apply(r *Router) { r.maxRetries = o.n }

// WithMaxRetries bounds how many times a router transaction is retried
// after a wait-die abort or a lost replica (default 256, matching
// core.Suite).
func WithMaxRetries(n int) Option { return retriesOption{n: n} }

type parallelOption struct{ on bool }

func (o parallelOption) apply(r *Router) { r.parallel = o.on }

type budgetOption struct{ b *core.RetryBudget }

func (o budgetOption) apply(r *Router) { r.budget = o.b }

// WithRetryBudget caps the router's unavailability-class transaction
// retries with the same token-bucket policy as core.WithRetryBudget;
// pass the very same budget to the router and its suites so their
// combined retry load honors one cap. Wait-die retries are exempt.
func WithRetryBudget(b *core.RetryBudget) Option { return budgetOption{b: b} }

// WithParallelStitch makes unlimited scans and counts fetch their
// per-shard parts concurrently (one goroutine per shard; each shard's
// core.Tx stays single-goroutine) and runs the shared transaction's 2PC
// rounds in parallel. The default is sequential, which keeps simulations
// deterministic.
func WithParallelStitch(on bool) Option { return parallelOption{on: on} }

// nextRouterNode mirrors core's per-suite node tagging: routers count
// down from the top of the 10-bit node-tag range while suites count up
// from the bottom, so default-constructed routers and suites in one
// process get distinct wait-die node tags.
var nextRouterNode atomic.Uint32

// NewRouter builds a router over suites, one per shard of m, in range
// order. Representative names must be unique across all suites: the
// shared cross-shard transaction identifies two-phase-commit
// participants by name, so a collision would silently drop one shard's
// representative from the commit protocol.
func NewRouter(m *Map, suites []*core.Suite, opts ...Option) (*Router, error) {
	if m == nil {
		return nil, errors.New("shard: nil map")
	}
	if len(suites) != m.Shards() {
		return nil, fmt.Errorf("shard: map has %d shards but %d suites given", m.Shards(), len(suites))
	}
	seen := make(map[string]int)
	for i, s := range suites {
		if s == nil {
			return nil, fmt.Errorf("shard: suite %d is nil", i)
		}
		for _, member := range s.Config().Members {
			name := member.Dir.Name()
			if prev, dup := seen[name]; dup {
				return nil, fmt.Errorf("shard: representative %q serves both shard %d and shard %d",
					name, prev, i)
			}
			seen[name] = i
		}
	}
	r := &Router{
		m:          m,
		suites:     suites,
		maxRetries: 256,
		stats:      newRouterStats(m.Shards()),
	}
	for _, op := range opts {
		op.apply(r)
	}
	if r.ids == nil {
		r.ids = txn.NewIDSource(uint16(1<<10 - 1 - nextRouterNode.Add(1)%512))
	}
	return r, nil
}

// Map returns the router's shard map.
func (r *Router) Map() *Map { return r.m }

// Suites returns a snapshot of the per-shard suites in range order.
func (r *Router) Suites() []*core.Suite {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*core.Suite, len(r.suites))
	copy(out, r.suites)
	return out
}

// suite returns shard i's current suite.
func (r *Router) suite(i int) *core.Suite {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.suites[i]
}

// SetSuite atomically replaces shard i's suite — the router half of an
// online reconfiguration: reconfig.Manager builds the new-epoch suite,
// then the router routes subsequent operations through it. The replaced
// suite is returned and NOT closed; operations that snapshotted it may
// still be running, so the caller closes it after they drain (or leaks
// it for the remaining life of a test). The new suite must keep
// representative names unique across shards, for the same reason
// NewRouter demands it.
func (r *Router) SetSuite(i int, s *core.Suite) (*core.Suite, error) {
	if s == nil {
		return nil, errors.New("shard: nil suite")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.suites) {
		return nil, fmt.Errorf("shard: no shard %d", i)
	}
	seen := make(map[string]int)
	for j, other := range r.suites {
		if j == i {
			continue
		}
		for _, member := range other.Config().Members {
			seen[member.Dir.Name()] = j
		}
	}
	for _, member := range s.Config().Members {
		name := member.Dir.Name()
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("shard: representative %q already serves shard %d", name, prev)
		}
	}
	old := r.suites[i]
	r.suites[i] = s
	return old, nil
}

// Close shuts down every suite's background machinery.
func (r *Router) Close() {
	for _, s := range r.Suites() {
		s.Close()
	}
}

// ownerOf validates a user key and returns its owning shard index.
func (r *Router) ownerOf(key string) (int, error) {
	if key == "" {
		return 0, errors.New("shard: empty key")
	}
	return r.m.Owner(keyspace.New(key)), nil
}

// Lookup returns the value stored under key and whether an entry exists.
func (r *Router) Lookup(ctx context.Context, key string) (string, bool, error) {
	i, err := r.ownerOf(key)
	if err != nil {
		return "", false, err
	}
	value, found, err := r.suite(i).Lookup(ctx, key)
	r.stats.point(i, core.OpLookup, err)
	return value, found, err
}

// Insert creates an entry for key in its owning shard.
func (r *Router) Insert(ctx context.Context, key, value string) error {
	i, err := r.ownerOf(key)
	if err != nil {
		return err
	}
	err = r.suite(i).Insert(ctx, key, value)
	r.stats.point(i, core.OpInsert, err)
	return err
}

// Update replaces the value of an existing entry.
func (r *Router) Update(ctx context.Context, key, value string) error {
	i, err := r.ownerOf(key)
	if err != nil {
		return err
	}
	err = r.suite(i).Update(ctx, key, value)
	r.stats.point(i, core.OpUpdate, err)
	return err
}

// LookupV is Lookup plus the winning version, delegated to the owning
// shard (see core.Suite.LookupV).
func (r *Router) LookupV(ctx context.Context, key string) (string, bool, version.V, error) {
	i, err := r.ownerOf(key)
	if err != nil {
		return "", false, version.Lowest, err
	}
	value, found, ver, err := r.suite(i).LookupV(ctx, key)
	r.stats.point(i, core.OpLookup, err)
	return value, found, ver, err
}

// InsertV is Insert plus the version written.
func (r *Router) InsertV(ctx context.Context, key, value string) (version.V, error) {
	i, err := r.ownerOf(key)
	if err != nil {
		return version.Lowest, err
	}
	ver, err := r.suite(i).InsertV(ctx, key, value)
	r.stats.point(i, core.OpInsert, err)
	return ver, err
}

// UpdateV is Update plus the version written.
func (r *Router) UpdateV(ctx context.Context, key, value string) (version.V, error) {
	i, err := r.ownerOf(key)
	if err != nil {
		return version.Lowest, err
	}
	ver, err := r.suite(i).UpdateV(ctx, key, value)
	r.stats.point(i, core.OpUpdate, err)
	return ver, err
}

// LocalLookup reads the key from the owning shard's designated local
// member (core.WithLocalReads on that shard's suite): one message
// instead of a read quorum, with the staleness contract documented on
// core.Suite.LocalLookup.
func (r *Router) LocalLookup(ctx context.Context, key string) (string, bool, version.V, error) {
	i, err := r.ownerOf(key)
	if err != nil {
		return "", false, version.Lowest, err
	}
	value, found, ver, err := r.suite(i).LocalLookup(ctx, key)
	r.stats.point(i, core.OpLocalLookup, err)
	return value, found, ver, err
}

// Delete removes the entry for key.
func (r *Router) Delete(ctx context.Context, key string) error {
	i, err := r.ownerOf(key)
	if err != nil {
		return err
	}
	err = r.suite(i).Delete(ctx, key)
	r.stats.point(i, core.OpDelete, err)
	return err
}

// Scan returns up to limit current entries with keys strictly greater
// than after, ascending, across all shards, as one atomic cross-shard
// transaction.
func (r *Router) Scan(ctx context.Context, after string, limit int) ([]core.KV, error) {
	var out []core.KV
	err := r.runTxn(ctx, core.OpScan, func(x *Txn) error {
		var err error
		out, err = x.Scan(ctx, after, limit)
		return err
	})
	return out, err
}

// ScanRange returns up to limit current entries with after < key <
// until, ascending. An empty until means "to the end".
func (r *Router) ScanRange(ctx context.Context, after, until string, limit int) ([]core.KV, error) {
	var out []core.KV
	err := r.runTxn(ctx, core.OpScan, func(x *Txn) error {
		var err error
		out, err = x.ScanRange(ctx, after, until, limit)
		return err
	})
	return out, err
}

// ScanReverse returns up to limit current entries with keys strictly
// less than before, descending. Pass before = "" to scan from the end.
func (r *Router) ScanReverse(ctx context.Context, before string, limit int) ([]core.KV, error) {
	var out []core.KV
	err := r.runTxn(ctx, core.OpScan, func(x *Txn) error {
		var err error
		out, err = x.ScanReverse(ctx, before, limit)
		return err
	})
	return out, err
}

// ScanPrefix returns the entries whose keys are tuple-encoded extensions
// of the given prefix components (see keyspace.EncodeTuple), in order.
func (r *Router) ScanPrefix(ctx context.Context, limit int, components ...string) ([]core.KV, error) {
	var out []core.KV
	err := r.runTxn(ctx, core.OpScan, func(x *Txn) error {
		var err error
		out, err = x.ScanPrefix(ctx, limit, components...)
		return err
	})
	return out, err
}

// Count returns the total number of current entries across all shards.
// Every shard is counted inside the same transaction — one consistent
// cut across the whole sharded directory — so concurrent writers and
// read-repair installs can never be half-counted.
func (r *Router) Count(ctx context.Context) (int, error) {
	var n int
	err := r.runTxn(ctx, core.OpCount, func(x *Txn) error {
		var err error
		n, err = x.Count(ctx)
		return err
	})
	return n, err
}

// Successor returns the current entry with the smallest key strictly
// greater than after, searching the owning shard first and falling
// through to higher shards while each returns a definitive "no
// successor". found == false means no shard holds one; errors are
// search failures and never imply emptiness.
func (r *Router) Successor(ctx context.Context, after string) (core.KV, bool, error) {
	var kv core.KV
	var found bool
	err := r.runTxn(ctx, core.OpSuccessor, func(x *Txn) error {
		var err error
		kv, found, err = x.Successor(ctx, after)
		return err
	})
	return kv, found, err
}

// Predecessor is the mirror of Successor, falling through to lower
// shards. Pass before = "" for the maximum entry.
func (r *Router) Predecessor(ctx context.Context, before string) (core.KV, bool, error) {
	var kv core.KV
	var found bool
	err := r.runTxn(ctx, core.OpPredecessor, func(x *Txn) error {
		var err error
		kv, found, err = x.Predecessor(ctx, before)
		return err
	})
	return kv, found, err
}

// RunInTxn runs fn as one atomic cross-shard transaction: every
// operation on the Txn, whichever shards it lands on, commits together
// through a single two-phase commit or has no effect. fn may be
// re-executed after wait-die aborts or replica failures and must be
// idempotent from the caller's perspective.
func (r *Router) RunInTxn(ctx context.Context, fn func(x *Txn) error) error {
	return r.runTxn(ctx, core.OpTxn, fn)
}

// runTxn is the router's retry loop, mirroring core.Suite.runTxn: each
// attempt runs under its own attempt ID (same wait-die age), failed
// members accumulate into per-shard exclusion sets, and wait-die victims
// back off linearly. The shared txn.Txn is committed when any shard
// mutated and aborted (releasing read locks) otherwise.
func (r *Router) runTxn(ctx context.Context, op string, fn func(x *Txn) error) error {
	start := time.Now()
	base := r.ids.Next()
	suites := r.Suites()
	excludes := make([]map[string]bool, len(suites))
	for i := range excludes {
		excludes[i] = make(map[string]bool)
	}
	maxAttempts := r.maxRetries
	if maxAttempts >= txn.MaxAttempts {
		maxAttempts = txn.MaxAttempts - 1
	}
	var lastErr error
	for attempt := 0; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			r.stats.done(op, time.Since(start), 0, attempt, err)
			return err
		}
		t := txn.New(txn.AttemptID(base, attempt))
		t.Parallel = r.parallel
		x := &Txn{r: r, t: t, suites: suites, txs: make([]*core.Tx, len(suites)), excludes: excludes}
		err := fn(x)
		if err == nil {
			if x.mutated() {
				err = t.Commit(ctx)
			} else {
				err = t.Abort(ctx)
			}
		} else {
			_ = t.Abort(ctx)
		}
		if err == nil {
			if r.budget != nil {
				r.budget.OnSuccess()
			}
			r.stats.done(op, time.Since(start), x.fanout(), attempt, nil)
			return nil
		}
		lastErr = err
		retry, cause := core.DecideRetry(err, r.budget)
		if !retry {
			if cause != nil {
				err = fmt.Errorf("%w: %w", cause, err)
			}
			r.stats.done(op, time.Since(start), x.fanout(), attempt, err)
			return err
		}
		for i, tx := range x.txs {
			if tx == nil {
				continue
			}
			for _, name := range tx.FailedMembers() {
				excludes[i][name] = true
			}
		}
		if errors.Is(err, lock.ErrDie) {
			core.Backoff(ctx, attempt)
		}
	}
	err := fmt.Errorf("%w: %v", core.ErrRetriesExhausted, lastErr)
	r.stats.done(op, time.Since(start), 0, maxAttempts+1, err)
	return err
}
