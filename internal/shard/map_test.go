package shard

import (
	"testing"

	"repdir/internal/keyspace"
)

func TestMapOwnership(t *testing.T) {
	m, err := NewMap("f", "m")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Shards(); got != 3 {
		t.Fatalf("Shards = %d, want 3", got)
	}
	cases := []struct {
		key  keyspace.Key
		want int
	}{
		{keyspace.Low(), 0},
		{keyspace.New("a"), 0},
		{keyspace.New("ezzz"), 0},
		{keyspace.New("f"), 1}, // split key belongs to the right shard
		{keyspace.New("fa"), 1},
		{keyspace.New("lzzz"), 1},
		{keyspace.New("m"), 2},
		{keyspace.New("z"), 2},
		{keyspace.High(), 2},
	}
	for _, tc := range cases {
		if got := m.Owner(tc.key); got != tc.want {
			t.Fatalf("Owner(%s) = %d, want %d", tc.key, got, tc.want)
		}
	}

	// Range bounds are consistent with ownership: Lo inclusive, Hi
	// exclusive.
	for i := 0; i < m.Shards(); i++ {
		lo, hi := m.Lo(i), m.Hi(i)
		if !lo.IsLow() && m.Owner(lo) != i {
			t.Fatalf("Owner(Lo(%d)=%s) = %d", i, lo, m.Owner(lo))
		}
		if !hi.IsHigh() && m.Owner(hi) != i+1 {
			t.Fatalf("Owner(Hi(%d)=%s) = %d", i, hi, m.Owner(hi))
		}
	}
	if !m.Lo(0).IsLow() || !m.Hi(2).IsHigh() {
		t.Fatalf("edge bounds not sentinels: %s / %s", m.Lo(0), m.Hi(2))
	}
}

func TestMapSingleShard(t *testing.T) {
	m, err := NewMap()
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 1 {
		t.Fatalf("Shards = %d, want 1", m.Shards())
	}
	if m.Owner(keyspace.New("anything")) != 0 {
		t.Fatal("single shard must own every key")
	}
}

func TestMapValidation(t *testing.T) {
	for _, splits := range [][]string{
		{""},
		{"b", "a"},
		{"a", "a"},
		{"a", "b", "b"},
	} {
		if _, err := NewMap(splits...); err == nil {
			t.Fatalf("NewMap(%q) accepted invalid splits", splits)
		}
	}
}
