package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repdir/internal/keyspace"
)

// TestEquivalenceTable pins down the boundary placements the router's
// stitching must get exactly right: splits on stored keys, splits
// between keys, splits below/above every key, and runs of empty shards
// the neighbor fallthrough has to cross.
func TestEquivalenceTable(t *testing.T) {
	cases := []struct {
		name   string
		splits []string
		keys   []string
		del    []string
		probes []string
	}{
		{
			name:   "split-on-stored-key",
			splits: []string{"c"},
			keys:   []string{"a", "b", "c", "d", "e"},
			probes: []string{"a", "b", "c", "d", "e", "b5", "c5", "z", "0"},
		},
		{
			name:   "split-between-keys",
			splits: []string{"bm"},
			keys:   []string{"a", "b", "c", "d"},
			probes: []string{"a", "b", "bm", "c", "d", "0", "z"},
		},
		{
			name:   "split-below-all-keys",
			splits: []string{"0"},
			keys:   []string{"m", "n", "p"},
			probes: []string{"0", "m", "n", "p", "a", "z"},
		},
		{
			name:   "split-above-all-keys",
			splits: []string{"z"},
			keys:   []string{"m", "n", "p"},
			probes: []string{"m", "n", "p", "z", "a", "zz"},
		},
		{
			name:   "empty-shard-runs",
			splits: []string{"f", "g", "h", "t"},
			keys:   []string{"a", "e", "x"},
			probes: []string{"a", "e", "f", "g", "h", "t", "x", "b", "w", "z"},
		},
		{
			name:   "deletes-leave-ghosts-at-splits",
			splits: []string{"c", "f"},
			keys:   []string{"a", "b", "c", "d", "e", "f", "g"},
			del:    []string{"c", "f", "a"},
			probes: []string{"a", "b", "c", "d", "e", "f", "g", "0", "z"},
		},
		{
			name:   "everything-deleted",
			splits: []string{"c"},
			keys:   []string{"a", "b", "d"},
			del:    []string{"a", "b", "d"},
			probes: []string{"a", "b", "c", "d", "z"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newPair(t, tc.splits, 1)
			for _, k := range tc.keys {
				p.insert(t, k, "v-"+k)
			}
			for _, k := range tc.del {
				p.delete(t, k)
			}
			probes := append(tc.probes, tc.splits...)
			checkOrderedOps(t, p, probes)
		})
	}
}

// TestEquivalenceRandom drives randomized keysets, split placements, and
// operation mixes through both sides. Any divergence prints the seed for
// replay.
func TestEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))

			// A small universe forces key/split collisions to happen often.
			universe := make([]string, 18)
			for i := range universe {
				universe[i] = fmt.Sprintf("k%02d", i)
			}
			nsplits := 1 + rng.Intn(4)
			splitSet := map[string]bool{}
			for len(splitSet) < nsplits {
				s := universe[rng.Intn(len(universe))]
				if rng.Intn(2) == 0 {
					s += "x" // sometimes fall between keys instead of on one
				}
				splitSet[s] = true
			}
			var splits []string
			for s := range splitSet {
				splits = append(splits, s)
			}
			sort.Strings(splits)

			p := newPair(t, splits, seed)
			live := map[string]bool{}
			for op := 0; op < 60; op++ {
				k := universe[rng.Intn(len(universe))]
				switch {
				case !live[k]:
					p.insert(t, k, fmt.Sprintf("v%d", op))
					live[k] = true
				case rng.Intn(2) == 0:
					p.update(t, k, fmt.Sprintf("v%d", op))
				default:
					p.delete(t, k)
					delete(live, k)
				}
			}
			probes := append(append([]string{}, universe...), splits...)
			checkOrderedOps(t, p, probes)
		})
	}
}

// TestEquivalencePrefix checks ScanPrefix stitching over tuple-encoded
// keys, with a split point landing inside one tuple prefix's range.
func TestEquivalencePrefix(t *testing.T) {
	// Tuple keys sort by component; one split lands exactly at the start
	// of the "b" prefix group, another inside it.
	p := newPair(t, []string{"b", keyspace.EncodeTuple("b", "2").Raw()}, 3)
	type row struct{ a, b string }
	rows := []row{
		{"a", "1"}, {"a", "2"},
		{"b", "1"}, {"b", "2"}, {"b", "3"},
		{"c", "1"},
	}
	for _, r := range rows {
		p.insertTuple(t, r.a, r.b)
	}
	ctx := context.Background()
	for _, prefix := range []string{"a", "b", "c", "d"} {
		got, err := p.router.ScanPrefix(ctx, 0, prefix)
		if err != nil {
			t.Fatalf("router ScanPrefix(%q): %v", prefix, err)
		}
		want, err := p.ref.ScanPrefix(ctx, 0, prefix)
		if err != nil {
			t.Fatalf("reference ScanPrefix(%q): %v", prefix, err)
		}
		if !sameKVs(got, want) {
			t.Fatalf("ScanPrefix(%q): router %v, reference %v", prefix, got, want)
		}
	}
}
