package shard

import (
	"context"
	"fmt"
	"sync"

	"repdir/internal/core"
	"repdir/internal/keyspace"
	"repdir/internal/txn"
)

// Txn is one cross-shard transaction: a core.Tx per touched shard, all
// bound to the same underlying txn.Txn so every representative touched —
// on any shard — participates in one two-phase commit. Like core.Tx, a
// Txn's operations are not safe for concurrent use by the caller; the
// router's own parallel stitching keeps each shard's Tx on a single
// goroutine.
type Txn struct {
	r *Router
	t *txn.Txn
	// suites is the router's shard assignment snapshotted when the
	// transaction began; a concurrent SetSuite does not shift shards
	// under a running transaction.
	suites   []*core.Suite
	excludes []map[string]bool

	// mu guards lazy Tx creation; parallel stitching instantiates
	// several shards' transactions concurrently.
	mu  sync.Mutex
	txs []*core.Tx
}

// shardTx returns shard i's transaction, binding one on first use.
func (x *Txn) shardTx(i int) *core.Tx {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.txs[i] == nil {
		x.txs[i] = x.suites[i].AttachTx(x.t, x.excludes[i])
	}
	return x.txs[i]
}

// mutated reports whether any shard's transaction wrote state.
func (x *Txn) mutated() bool {
	for _, tx := range x.txs {
		if tx != nil && tx.Mutated() {
			return true
		}
	}
	return false
}

// fanout counts the shards this transaction touched.
func (x *Txn) fanout() int {
	n := 0
	for _, tx := range x.txs {
		if tx != nil {
			n++
		}
	}
	return n
}

// Lookup reads key from its owning shard within the transaction.
func (x *Txn) Lookup(ctx context.Context, key string) (string, bool, error) {
	i, err := x.r.ownerOf(key)
	if err != nil {
		return "", false, err
	}
	return x.shardTx(i).Lookup(ctx, key)
}

// Insert creates an entry for key in its owning shard.
func (x *Txn) Insert(ctx context.Context, key, value string) error {
	i, err := x.r.ownerOf(key)
	if err != nil {
		return err
	}
	return x.shardTx(i).Insert(ctx, key, value)
}

// Update replaces the value of an existing entry.
func (x *Txn) Update(ctx context.Context, key, value string) error {
	i, err := x.r.ownerOf(key)
	if err != nil {
		return err
	}
	return x.shardTx(i).Update(ctx, key, value)
}

// Delete removes the entry for key.
func (x *Txn) Delete(ctx context.Context, key string) error {
	i, err := x.r.ownerOf(key)
	if err != nil {
		return err
	}
	return x.shardTx(i).Delete(ctx, key)
}

// Scan returns up to limit entries with keys strictly greater than
// after, ascending across all shards.
func (x *Txn) Scan(ctx context.Context, after string, limit int) ([]core.KV, error) {
	return x.scanSpan(ctx, lower(after), keyspace.High(), limit)
}

// ScanRange returns up to limit entries with after < key < until.
func (x *Txn) ScanRange(ctx context.Context, after, until string, limit int) ([]core.KV, error) {
	return x.scanSpan(ctx, lower(after), upper(until), limit)
}

// ScanPrefix returns the entries whose keys extend the tuple-encoded
// prefix, in order.
func (x *Txn) ScanPrefix(ctx context.Context, limit int, components ...string) ([]core.KV, error) {
	after, until := keyspace.TuplePrefixRange(components...)
	return x.scanSpan(ctx, after, until, limit)
}

// span is the slice of one shard a bounded traversal must visit, with
// the requested bounds translated into the shard's local terms: a bound
// outside the shard's range becomes the local "unbounded" sentinel.
type span struct {
	shard        int
	after, until keyspace.Key
}

// subspans intersects the requested (after, until) span with each
// shard's range, in ascending shard order. A shard whose range does not
// intersect the span — including the case where until falls exactly on
// the shard's lower split point — contributes no part, which is what
// keeps a boundary key from being consulted (and possibly returned)
// twice.
func (x *Txn) subspans(after, until keyspace.Key) []span {
	m := x.r.m
	var parts []span
	for i := 0; i < m.Shards(); i++ {
		lo, hi := m.Lo(i), m.Hi(i)
		// No key k in [lo, hi) can satisfy after < k < until when the
		// span starts at or beyond the shard's end, or ends at or below
		// its start.
		if !after.Less(hi) || !lo.Less(until) {
			continue
		}
		p := span{shard: i, after: after, until: until}
		if p.after.Less(lo) {
			p.after = keyspace.Low()
		}
		if !p.until.Less(hi) {
			p.until = keyspace.High()
		}
		parts = append(parts, p)
	}
	return parts
}

// scanSpan stitches a forward scan. The shard ranges are disjoint and
// ordered, so concatenating per-shard pages in shard order is the k-way
// merge; stitchForward verifies the strict global ordering as it goes.
func (x *Txn) scanSpan(ctx context.Context, after, until keyspace.Key, limit int) ([]core.KV, error) {
	if !after.Less(until) {
		return nil, nil
	}
	parts := x.subspans(after, until)
	if limit > 0 {
		// Limited scans visit shards in range order and stop as soon as
		// the page fills, so lower shards satisfy the limit without
		// read-locking higher ones.
		var out []core.KV
		for _, p := range parts {
			page, err := x.shardTx(p.shard).ScanSpan(ctx, p.after, p.until, limit-len(out))
			if err != nil {
				return nil, err
			}
			if out, err = stitchForward(out, page); err != nil {
				return nil, err
			}
			if len(out) >= limit {
				break
			}
		}
		return out, nil
	}
	pages := make([][]core.KV, len(parts))
	err := x.gather(len(parts), func(j int) error {
		var err error
		pages[j], err = x.shardTx(parts[j].shard).ScanSpan(ctx, parts[j].after, parts[j].until, 0)
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []core.KV
	for _, page := range pages {
		if out, err = stitchForward(out, page); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ScanReverse returns up to limit entries with keys strictly less than
// before, descending across all shards.
func (x *Txn) ScanReverse(ctx context.Context, before string, limit int) ([]core.KV, error) {
	return x.scanReverseSpan(ctx, upper(before), limit)
}

func (x *Txn) scanReverseSpan(ctx context.Context, before keyspace.Key, limit int) ([]core.KV, error) {
	if before.IsLow() {
		return nil, nil
	}
	m := x.r.m
	type rpart struct {
		shard  int
		before keyspace.Key
	}
	var parts []rpart
	for i := m.Shards() - 1; i >= 0; i-- {
		lo, hi := m.Lo(i), m.Hi(i)
		if !lo.Less(before) {
			// Every key in this shard is at or above before.
			continue
		}
		p := rpart{shard: i, before: before}
		if !before.Less(hi) {
			// before at or beyond the shard's end: locally unbounded.
			p.before = keyspace.High()
		}
		parts = append(parts, p)
	}
	if limit > 0 {
		var out []core.KV
		for _, p := range parts {
			page, err := x.shardTx(p.shard).ScanReverseSpan(ctx, p.before, limit-len(out))
			if err != nil {
				return nil, err
			}
			if out, err = stitchReverse(out, page); err != nil {
				return nil, err
			}
			if len(out) >= limit {
				break
			}
		}
		return out, nil
	}
	pages := make([][]core.KV, len(parts))
	err := x.gather(len(parts), func(j int) error {
		var err error
		pages[j], err = x.shardTx(parts[j].shard).ScanReverseSpan(ctx, parts[j].before, 0)
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []core.KV
	for _, page := range pages {
		if out, err = stitchReverse(out, page); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Count totals every shard's entries within this transaction: one
// consistent cut across the whole sharded directory, so entries being
// installed by concurrent writers or read-repair freshens are either in
// every shard's count or in none.
func (x *Txn) Count(ctx context.Context) (int, error) {
	counts := make([]int, len(x.suites))
	err := x.gather(len(counts), func(j int) error {
		var err error
		counts[j], err = x.shardTx(j).Count(ctx)
		return err
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Successor finds the first entry above after, starting in the owning
// shard and falling through to higher shards. The fallthrough relies on
// the core distinction between "definitively no successor here" (found
// == false, keep going) and a failed search (error, surfaced): without
// it a down shard would silently vanish from the traversal.
func (x *Txn) Successor(ctx context.Context, after string) (core.KV, bool, error) {
	k := lower(after)
	m := x.r.m
	start := m.Owner(k)
	for i := start; i < m.Shards(); i++ {
		probe := k
		if i != start {
			// Every key in a higher shard lies above after.
			probe = keyspace.Low()
		}
		kv, found, err := x.shardTx(i).SuccessorKey(ctx, probe)
		if err != nil {
			return core.KV{}, false, err
		}
		if found {
			return kv, true, nil
		}
	}
	return core.KV{}, false, nil
}

// Predecessor is the mirror of Successor, falling through to lower
// shards.
func (x *Txn) Predecessor(ctx context.Context, before string) (core.KV, bool, error) {
	k := upper(before)
	m := x.r.m
	start := m.Owner(k)
	for i := start; i >= 0; i-- {
		probe := k
		if i != start {
			probe = keyspace.High()
		}
		kv, found, err := x.shardTx(i).PredecessorKey(ctx, probe)
		if err != nil {
			return core.KV{}, false, err
		}
		if found {
			return kv, true, nil
		}
	}
	return core.KV{}, false, nil
}

// gather runs do(0..n-1), concurrently when the router is configured for
// parallel stitching. Each index must touch a distinct shard: the
// per-shard core.Tx is single-goroutine.
func (x *Txn) gather(n int, do func(j int) error) error {
	if !x.r.parallel || n < 2 {
		for j := 0; j < n; j++ {
			if err := do(j); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for j := 1; j < n; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = do(j)
		}(j)
	}
	errs[0] = do(0)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// stitchForward appends page to acc, verifying the strict ascending
// order across the shard boundary. A violation means two shards returned
// overlapping keys — a duplicated boundary key or a misrouted write —
// and the scan fails rather than return a corrupt merge.
func stitchForward(acc, page []core.KV) ([]core.KV, error) {
	if len(acc) > 0 && len(page) > 0 && page[0].Key <= acc[len(acc)-1].Key {
		return nil, fmt.Errorf("shard: stitched scan out of order: %q then %q (boundary key served by two shards?)",
			acc[len(acc)-1].Key, page[0].Key)
	}
	return append(acc, page...), nil
}

// stitchReverse is the descending mirror of stitchForward.
func stitchReverse(acc, page []core.KV) ([]core.KV, error) {
	if len(acc) > 0 && len(page) > 0 && page[0].Key >= acc[len(acc)-1].Key {
		return nil, fmt.Errorf("shard: stitched reverse scan out of order: %q then %q (boundary key served by two shards?)",
			acc[len(acc)-1].Key, page[0].Key)
	}
	return append(acc, page...), nil
}

// lower maps the string API's "" to "from the beginning".
func lower(after string) keyspace.Key {
	if after == "" {
		return keyspace.Low()
	}
	return keyspace.New(after)
}

// upper maps "" to "to the end".
func upper(until string) keyspace.Key {
	if until == "" {
		return keyspace.High()
	}
	return keyspace.New(until)
}
