// Package shard partitions the ordered keyspace across several replica
// suites and routes directory operations to the owning suite.
//
// A Map is a static list of split points dividing the keyspace into
// contiguous ranges; shard i serves [Lo(i), Hi(i)), with Lo(0) = LOW and
// Hi(n-1) = HIGH. A Router holds one core.Suite per range and implements
// the full directory API on top: point operations go to the owning
// shard, ordered traversals are stitched from per-shard results (the
// ranges are disjoint and ordered, so concatenation in shard order is
// the k-way merge), and multi-key transactions span shards by binding
// one core.Tx per touched suite to a single two-phase-commit
// transaction.
//
// Split points are fixed at construction; online splits and moves are
// deferred to the reconfiguration work (see DESIGN.md section 12).
package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repdir/internal/keyspace"
)

// Map is a static partition of the keyspace into len(splits)+1
// contiguous ranges. The zero Map is not valid; use NewMap. A Map with
// no splits describes a single shard owning the whole keyspace.
type Map struct {
	splits []keyspace.Key
}

// NewMap builds a shard map from split points, which must be non-empty
// and strictly ascending. Each split key is the inclusive lower bound of
// the shard to its right: a key equal to splits[i] is owned by shard
// i+1.
func NewMap(splits ...string) (*Map, error) {
	ks := make([]keyspace.Key, len(splits))
	for i, s := range splits {
		if s == "" {
			return nil, errors.New("shard: empty split point")
		}
		ks[i] = keyspace.New(s)
		if i > 0 && !ks[i-1].Less(ks[i]) {
			return nil, fmt.Errorf("shard: split points not strictly ascending: %q then %q",
				splits[i-1], s)
		}
	}
	return &Map{splits: ks}, nil
}

// Shards returns how many ranges the map describes.
func (m *Map) Shards() int { return len(m.splits) + 1 }

// Splits returns the split points as strings, in order.
func (m *Map) Splits() []string {
	out := make([]string, len(m.splits))
	for i, k := range m.splits {
		out[i] = k.Raw()
	}
	return out
}

// Owner returns the index of the shard whose range contains k. The
// sentinels map to the edge shards: LOW to shard 0, HIGH to the last.
func (m *Map) Owner(k keyspace.Key) int {
	return sort.Search(len(m.splits), func(i int) bool { return k.Less(m.splits[i]) })
}

// Lo returns shard i's inclusive lower bound: LOW for shard 0, the
// preceding split point otherwise.
func (m *Map) Lo(i int) keyspace.Key {
	if i == 0 {
		return keyspace.Low()
	}
	return m.splits[i-1]
}

// Hi returns shard i's exclusive upper bound: HIGH for the last shard,
// its split point otherwise.
func (m *Map) Hi(i int) keyspace.Key {
	if i == len(m.splits) {
		return keyspace.High()
	}
	return m.splits[i]
}

// String renders the ranges for logs and errors.
func (m *Map) String() string {
	var b strings.Builder
	for i := 0; i < m.Shards(); i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "[%d: %s..%s)", i, m.Lo(i), m.Hi(i))
	}
	return b.String()
}
