package shard

import (
	"fmt"
	"sort"
	"testing"
)

// FuzzSplitPlacement drives arbitrary split-point placements (relative
// to an arbitrary keyset) through the equivalence check: whatever the
// placement — on keys, between keys, outside the key range, adjacent
// splits with empty shards between — the router must return exactly the
// single-suite result.
//
// Each input byte pair contributes one key (low nibble-ish) and one
// split candidate, keeping the state space small enough that the fuzzer
// finds collisions between keys and splits quickly.
func FuzzSplitPlacement(f *testing.F) {
	f.Add([]byte{0x10, 0x32, 0x54})
	f.Add([]byte{0x00, 0x01, 0x11, 0xff})
	f.Add([]byte{0xaa, 0xbb})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 8 {
			t.Skip()
		}
		keySet := map[string]bool{}
		splitSet := map[string]bool{}
		for i, b := range data {
			k := fmt.Sprintf("k%02d", int(b&0x0f))
			s := fmt.Sprintf("k%02d", int(b>>4)&0x0f)
			if b>>4&1 == 0 {
				s += "x" // fall between keys half the time
			}
			if i%2 == 0 || len(splitSet) == 0 {
				keySet[k] = true
			}
			splitSet[s] = true
			if len(splitSet) > 4 {
				break
			}
		}
		var splits []string
		for s := range splitSet {
			splits = append(splits, s)
		}
		sort.Strings(splits)

		p := newPair(t, splits, 1)
		var probes []string
		for k := range keySet {
			p.insert(t, k, "v-"+k)
			probes = append(probes, k)
		}
		checkOrderedOps(t, p, append(probes, splits...))
	})
}
