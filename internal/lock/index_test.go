package lock

import (
	"fmt"
	"math/rand"
	"testing"

	"repdir/internal/interval"
	"repdir/internal/keyspace"
)

// refIndex is the obviously-correct linear reference against which the
// treap is property-tested.
type refIndex struct {
	locks map[*inode]held
}

func newRefIndex() *refIndex { return &refIndex{locks: make(map[*inode]held)} }

func (r *refIndex) conflict(txn TxnID, mode Mode, rng interval.Range) (TxnID, bool) {
	var minID TxnID
	found := false
	for _, h := range r.locks {
		if Compatible(txn, mode, rng, h.txn, h.mode, h.rng) {
			continue
		}
		if !found || h.txn < minID {
			minID = h.txn
			found = true
		}
	}
	return minID, found
}

// checkTreap validates the treap's structural invariants: BST order on
// (Lo, seq), heap order on priorities, and correct maxHi augmentation.
func checkTreap(t *testing.T, n *inode) keyspace.Key {
	t.Helper()
	if n == nil {
		return keyspace.Low()
	}
	maxHi := n.lock.rng.Hi
	if n.left != nil {
		if !n.left.lessThan(n.lock.rng.Lo, n.seq) {
			t.Fatal("BST order violated on left child")
		}
		if n.left.priority > n.priority {
			t.Fatal("heap order violated on left child")
		}
		if hi := checkTreap(t, n.left); maxHi.Less(hi) {
			maxHi = hi
		}
	}
	if n.right != nil {
		if n.right.lessThan(n.lock.rng.Lo, n.seq) {
			t.Fatal("BST order violated on right child")
		}
		if n.right.priority > n.priority {
			t.Fatal("heap order violated on right child")
		}
		if hi := checkTreap(t, n.right); maxHi.Less(hi) {
			maxHi = hi
		}
	}
	if !n.maxHi.Equal(maxHi) {
		t.Fatalf("maxHi augmentation wrong: %s vs %s", n.maxHi, maxHi)
	}
	return maxHi
}

// TestIndexMatchesLinearReference drives random inserts, removals, and
// conflict queries through both implementations and demands identical
// answers, validating treap invariants along the way.
func TestIndexMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	ix := newIndex()
	ref := newRefIndex()
	var live []*inode

	randRange := func() interval.Range {
		a := fmt.Sprintf("%03d", rng.Intn(200))
		b := fmt.Sprintf("%03d", rng.Intn(200))
		return interval.Span(keyspace.New(a), keyspace.New(b))
	}
	randMode := func() Mode {
		if rng.Intn(2) == 0 {
			return ModeLookup
		}
		return ModeModify
	}

	for step := 0; step < 5000; step++ {
		switch rng.Intn(5) {
		case 0, 1: // insert
			h := held{txn: TxnID(rng.Intn(40) + 1), mode: randMode(), rng: randRange()}
			n := ix.insert(h)
			ref.locks[n] = h
			live = append(live, n)
		case 2: // remove
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			n := live[i]
			ix.remove(n)
			delete(ref.locks, n)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // conflict query
			txn := TxnID(rng.Intn(40) + 1)
			mode := randMode()
			probe := randRange()
			gotID, gotFound := ix.conflict(txn, mode, probe)
			wantID, wantFound := ref.conflict(txn, mode, probe)
			if gotFound != wantFound || (gotFound && gotID != wantID) {
				t.Fatalf("step %d: conflict(%d, %v, %s) = (%d,%v), want (%d,%v)",
					step, txn, mode, probe, gotID, gotFound, wantID, wantFound)
			}
		}
		if step%250 == 0 {
			checkTreap(t, ix.root)
		}
	}
	checkTreap(t, ix.root)
	// Drain everything and verify emptiness.
	for _, n := range live {
		ix.remove(n)
	}
	if ix.root != nil {
		t.Fatal("index not empty after removing all locks")
	}
}

// TestIndexSentinelRanges exercises ranges touching LOW and HIGH (the
// whole-domain locks the file baseline takes).
func TestIndexSentinelRanges(t *testing.T) {
	ix := newIndex()
	full := ix.insert(held{txn: 1, mode: ModeModify, rng: interval.Full()})
	if _, found := ix.conflict(2, ModeLookup, interval.Point(keyspace.New("q"))); !found {
		t.Fatal("full-domain modify must conflict with any probe")
	}
	if _, found := ix.conflict(1, ModeModify, interval.Full()); found {
		t.Fatal("own lock must not conflict")
	}
	ix.remove(full)
	if _, found := ix.conflict(2, ModeModify, interval.Full()); found {
		t.Fatal("conflict after removal")
	}
}
