package lock

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repdir/internal/interval"
	"repdir/internal/keyspace"
)

func rng(a, b string) interval.Range {
	return interval.Span(keyspace.New(a), keyspace.New(b))
}

func mustAcquire(t *testing.T, m *Manager, txn TxnID, mode Mode, r interval.Range) {
	t.Helper()
	if err := m.Acquire(context.Background(), txn, mode, r); err != nil {
		t.Fatalf("Acquire(txn=%d, %s, %s): %v", txn, mode, r, err)
	}
}

// TestCompatibilityMatrix checks every cell of Figure 7.
func TestCompatibilityMatrix(t *testing.T) {
	intersecting := rng("c", "f") // intersects [a..d]
	disjoint := rng("x", "z")     // disjoint from [a..d]
	heldRange := rng("a", "d")
	tests := []struct {
		name     string
		reqMode  Mode
		reqRange interval.Range
		heldMode Mode
		want     bool
	}{
		{"Modify vs intersecting Modify", ModeModify, intersecting, ModeModify, false},
		{"Modify vs disjoint Modify", ModeModify, disjoint, ModeModify, true},
		{"Modify vs intersecting Lookup", ModeModify, intersecting, ModeLookup, false},
		{"Modify vs disjoint Lookup", ModeModify, disjoint, ModeLookup, true},
		{"Lookup vs intersecting Modify", ModeLookup, intersecting, ModeModify, false},
		{"Lookup vs disjoint Modify", ModeLookup, disjoint, ModeModify, true},
		{"Lookup vs intersecting Lookup", ModeLookup, intersecting, ModeLookup, true},
		{"Lookup vs disjoint Lookup", ModeLookup, disjoint, ModeLookup, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Compatible(2, tt.reqMode, tt.reqRange, 1, tt.heldMode, heldRange)
			if got != tt.want {
				t.Errorf("Compatible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSameTransactionAlwaysCompatible(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 1, ModeModify, rng("a", "m"))
	mustAcquire(t, m, 1, ModeModify, rng("a", "m"))
	mustAcquire(t, m, 1, ModeLookup, rng("b", "c"))
	if got := m.HeldBy(1); got != 3 {
		t.Errorf("HeldBy = %d, want 3", got)
	}
}

func TestDisjointModifiesRunConcurrently(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 1, ModeModify, rng("a", "c"))
	mustAcquire(t, m, 2, ModeModify, rng("d", "f"))
	mustAcquire(t, m, 3, ModeLookup, rng("g", "i"))
	if m.ActiveTransactions() != 3 {
		t.Error("three disjoint transactions should all hold locks")
	}
}

func TestYoungerRequesterDies(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 1, ModeModify, rng("a", "z"))
	err := m.Acquire(context.Background(), 2, ModeModify, rng("m", "n"))
	if !errors.Is(err, ErrDie) {
		t.Fatalf("younger conflicting requester got %v, want ErrDie", err)
	}
	err = m.Acquire(context.Background(), 3, ModeLookup, rng("m", "n"))
	if !errors.Is(err, ErrDie) {
		t.Fatalf("younger lookup against modify got %v, want ErrDie", err)
	}
	if s := m.Stats(); s.Dies != 2 {
		t.Errorf("Dies = %d, want 2", s.Dies)
	}
}

func TestOlderRequesterWaitsUntilRelease(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 5, ModeModify, rng("a", "z"))

	acquired := make(chan error, 1)
	go func() {
		acquired <- m.Acquire(context.Background(), 1, ModeModify, rng("m", "n"))
	}()

	select {
	case err := <-acquired:
		t.Fatalf("older transaction should block, returned %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	m.ReleaseAll(5)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("older transaction should acquire after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("older transaction never acquired after release")
	}
}

func TestWaiterRespectsContext(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 9, ModeModify, rng("a", "z"))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := m.Acquire(ctx, 1, ModeModify, rng("b", "c"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	// The abandoned waiter must not linger.
	m.mu.Lock()
	n := len(m.waiters)
	m.mu.Unlock()
	if n != 0 {
		t.Errorf("%d waiters leaked", n)
	}
}

func TestReleaseAllOnlyDropsOwnLocks(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 1, ModeLookup, rng("a", "c"))
	mustAcquire(t, m, 2, ModeLookup, rng("a", "c"))
	m.ReleaseAll(1)
	if m.HeldBy(1) != 0 || m.HeldBy(2) != 1 {
		t.Error("ReleaseAll dropped the wrong locks")
	}
	// Releasing a transaction with no locks is a no-op.
	m.ReleaseAll(42)
	if m.HeldBy(2) != 1 {
		t.Error("ReleaseAll of unknown txn disturbed state")
	}
}

func TestInvalidRangeRejected(t *testing.T) {
	m := NewManager()
	bad := interval.Range{Lo: keyspace.New("z"), Hi: keyspace.New("a")}
	if err := m.Acquire(context.Background(), 1, ModeModify, bad); err == nil {
		t.Error("inverted range should be rejected")
	}
}

func TestSharedLookupsThenModifyWaits(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 10, ModeLookup, rng("a", "c"))
	mustAcquire(t, m, 11, ModeLookup, rng("b", "d"))

	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(context.Background(), 2, ModeModify, rng("b", "c"))
	}()
	select {
	case err := <-done:
		t.Fatalf("modify over shared lookups should block, got %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(10)
	select {
	case err := <-done:
		t.Fatalf("modify should still block on second lookup, got %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(11)
	if err := <-done; err != nil {
		t.Fatalf("modify should acquire once all lookups release: %v", err)
	}
}

// TestNoDeadlockUnderRandomLoad hammers the manager with transactions that
// acquire several random ranges and verifies the system always drains:
// wait-die guarantees no cycle, so every goroutine finishes.
func TestNoDeadlockUnderRandomLoad(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	var nextID TxnID
	var idMu sync.Mutex
	newID := func() TxnID {
		idMu.Lock()
		defer idMu.Unlock()
		nextID++
		return nextID
	}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				txn := newID()
			retry:
				ok := true
				for j := 0; j < 3; j++ {
					lo := fmt.Sprintf("%02d", r.Intn(50))
					hi := fmt.Sprintf("%02d", r.Intn(50))
					mode := ModeLookup
					if r.Intn(2) == 0 {
						mode = ModeModify
					}
					err := m.Acquire(context.Background(), txn, mode, rng(lo, hi))
					if errors.Is(err, ErrDie) {
						ok = false
						break
					}
					if err != nil {
						t.Errorf("unexpected error: %v", err)
						ok = false
						break
					}
				}
				m.ReleaseAll(txn)
				if !ok {
					// Retry once with the same ID, as the protocol intends.
					if r.Intn(2) == 0 {
						goto retry
					}
				}
			}
		}(int64(g))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lock manager deadlocked under random load")
	}
	if m.ActiveTransactions() != 0 {
		t.Error("locks leaked after drain")
	}
}

// TestOldTransactionNeverStarves: under a continuous stream of younger
// contenders, the oldest transaction always gets the lock eventually —
// it never dies (wait-die kills only younger requesters) and waiting
// requesters retry on every release.
func TestOldTransactionNeverStarves(t *testing.T) {
	m := NewManager()
	target := rng("k", "k")

	// Txn 100 currently holds the lock.
	mustAcquire(t, m, 100, ModeModify, target)

	acquired := make(chan error, 1)
	go func() {
		// The oldest transaction in the system wants the lock.
		acquired <- m.Acquire(context.Background(), 1, ModeModify, target)
	}()

	// A stream of young transactions hammers the same lock; each either
	// dies immediately or (after the holder releases) briefly holds it.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := TxnID(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			id++
			if err := m.Acquire(context.Background(), id, ModeModify, target); err == nil {
				m.ReleaseAll(id)
			}
		}
	}()

	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(100)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("oldest transaction failed to acquire: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oldest transaction starved")
	}
	m.ReleaseAll(1)
	close(stop)
	wg.Wait()
}

func TestStatsCounters(t *testing.T) {
	m := NewManager()
	mustAcquire(t, m, 1, ModeModify, rng("a", "b"))
	mustAcquire(t, m, 2, ModeModify, rng("x", "y"))
	if s := m.Stats(); s.Grants != 2 || s.Waits != 0 || s.Dies != 0 {
		t.Errorf("stats = %+v", s)
	}
}
