// Package lock implements the type-specific range locking used by
// directory representatives (paper, section 3.1 and Figure 7).
//
// Two lock classes exist. Inquiry operations (DirRepLookup,
// DirRepPredecessor, DirRepSuccessor) take RepLookup(sigma, tau) locks on
// the closed key range they explicitly or implicitly read. Mutating
// operations (DirRepInsert, DirRepCoalesce) take RepModify(sigma, tau)
// locks. The Figure 7 compatibility relation reduces to: two locks
// conflict exactly when their ranges intersect and at least one of them is
// a RepModify lock — except that locks held by the same transaction never
// conflict with each other.
//
// Transactions follow strict two-phase locking: locks accumulate during
// the transaction and are released all at once by ReleaseAll at commit or
// abort, which (with [Traiger 82]) yields global serializability.
//
// Deadlocks across representatives are avoided with the wait-die scheme:
// transaction IDs are timestamps; an older transaction waits for a younger
// conflicting holder, while a younger transaction "dies" immediately
// (Acquire returns ErrDie) and is expected to abort and retry with its
// original timestamp.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repdir/internal/interval"
)

// Mode is a lock class from Figure 7.
type Mode int

const (
	// ModeLookup is the shared RepLookup(sigma, tau) class.
	ModeLookup Mode = iota + 1
	// ModeModify is the exclusive RepModify(sigma, tau) class.
	ModeModify
)

// String renders the mode with the paper's names.
func (m Mode) String() string {
	switch m {
	case ModeLookup:
		return "RepLookup"
	case ModeModify:
		return "RepModify"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// TxnID identifies a transaction. IDs are assigned from a monotonic
// counter, so a numerically smaller ID belongs to an older transaction;
// wait-die uses this order.
type TxnID uint64

// ErrDie is returned when wait-die decides the requesting (younger)
// transaction must abort rather than wait for an older holder. The caller
// should abort the whole transaction and retry it, reusing the original
// transaction ID so it eventually becomes the oldest and cannot die.
var ErrDie = errors.New("lock: wait-die abort (younger transaction must not wait)")

// Compatible reports whether a requested lock is compatible with a held
// lock according to Figure 7. Locks held by the same transaction are
// always compatible.
func Compatible(reqTxn TxnID, reqMode Mode, reqRange interval.Range,
	heldTxn TxnID, heldMode Mode, heldRange interval.Range) bool {
	if reqTxn == heldTxn {
		return true
	}
	if !reqRange.Intersects(heldRange) {
		return true
	}
	return reqMode == ModeLookup && heldMode == ModeLookup
}

// held is one granted lock.
type held struct {
	txn  TxnID
	mode Mode
	rng  interval.Range
}

// Stats counts lock-manager events; useful for the concurrency
// experiments.
type Stats struct {
	// Grants is the number of successful acquisitions.
	Grants uint64
	// Waits is the number of times a transaction blocked.
	Waits uint64
	// Dies is the number of wait-die aborts issued.
	Dies uint64
}

// Manager grants and releases range locks for one directory
// representative. Granted locks are indexed in an augmented interval
// treap so conflict checks cost expected O(log n) rather than a scan of
// every held lock. The zero value is not usable; construct with
// NewManager.
type Manager struct {
	mu      sync.Mutex
	idx     *index
	byTxn   map[TxnID][]*inode
	waiters map[chan struct{}]struct{}
	stats   Stats
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		idx:     newIndex(),
		byTxn:   make(map[TxnID][]*inode),
		waiters: make(map[chan struct{}]struct{}),
	}
}

// Acquire grants txn a lock of the given mode on rng, blocking while an
// incompatible lock is held by an older transaction. It returns ErrDie if
// wait-die requires txn to abort, or ctx.Err() if the context ends first.
func (m *Manager) Acquire(ctx context.Context, txn TxnID, mode Mode, rng interval.Range) error {
	if !rng.Valid() {
		return fmt.Errorf("lock: invalid range %s", rng)
	}
	for {
		m.mu.Lock()
		conflict, anyConflict := m.idx.conflict(txn, mode, rng)
		if !anyConflict {
			n := m.idx.insert(held{txn: txn, mode: mode, rng: rng})
			m.byTxn[txn] = append(m.byTxn[txn], n)
			m.stats.Grants++
			m.mu.Unlock()
			return nil
		}
		if txn > conflict {
			// The requester is younger than some conflicting holder: die.
			m.stats.Dies++
			m.mu.Unlock()
			return ErrDie
		}
		// The requester is older than every conflicting holder: wait for a
		// release and retry.
		m.stats.Waits++
		ch := make(chan struct{})
		m.waiters[ch] = struct{}{}
		m.mu.Unlock()

		select {
		case <-ch:
		case <-ctx.Done():
			m.mu.Lock()
			delete(m.waiters, ch)
			m.mu.Unlock()
			return ctx.Err()
		}
	}
}

// ReleaseAll drops every lock held by txn and wakes all waiters. Strict
// two-phase locking releases only at commit or abort, so no per-lock
// release is offered.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nodes, ok := m.byTxn[txn]
	if !ok {
		return
	}
	for _, n := range nodes {
		m.idx.remove(n)
	}
	delete(m.byTxn, txn)
	for ch := range m.waiters {
		close(ch)
		delete(m.waiters, ch)
	}
}

// HeldBy returns the number of locks currently held by txn.
func (m *Manager) HeldBy(txn TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byTxn[txn])
}

// ActiveTransactions returns the number of transactions holding at least
// one lock.
func (m *Manager) ActiveTransactions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byTxn)
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
