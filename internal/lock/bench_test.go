package lock

import (
	"context"
	"fmt"
	"testing"

	"repdir/internal/interval"
	"repdir/internal/keyspace"
)

// BenchmarkAcquireReleaseUncontended measures the fast path: one
// transaction taking and releasing a point lock.
func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	m := NewManager()
	ctx := context.Background()
	r := interval.Point(keyspace.New("k"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := TxnID(i + 1)
		if err := m.Acquire(ctx, txn, ModeModify, r); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
}

// BenchmarkAcquireManyHeldLocks measures conflict scanning with many
// compatible locks held by other transactions.
func BenchmarkAcquireManyHeldLocks(b *testing.B) {
	for _, held := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("held=%d", held), func(b *testing.B) {
			m := NewManager()
			ctx := context.Background()
			for i := 0; i < held; i++ {
				r := interval.Point(keyspace.New(fmt.Sprintf("h%06d", i)))
				if err := m.Acquire(ctx, TxnID(i+1), ModeLookup, r); err != nil {
					b.Fatal(err)
				}
			}
			probe := interval.Point(keyspace.New("probe"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txn := TxnID(held + i + 1)
				if err := m.Acquire(ctx, txn, ModeModify, probe); err != nil {
					b.Fatal(err)
				}
				m.ReleaseAll(txn)
			}
		})
	}
}

// BenchmarkCompatible measures the matrix check itself.
func BenchmarkCompatible(b *testing.B) {
	a := interval.Span(keyspace.New("a"), keyspace.New("m"))
	c := interval.Span(keyspace.New("k"), keyspace.New("z"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compatible(1, ModeModify, a, 2, ModeLookup, c)
	}
}
