package lock

import (
	"math/rand"

	"repdir/internal/interval"
	"repdir/internal/keyspace"
)

// index holds the granted locks in an augmented interval treap: a
// randomized binary search tree ordered by (range low endpoint, insertion
// sequence), where every node also carries the maximum high endpoint in
// its subtree. Intersection queries prune subtrees whose maxHi sorts
// below the probe range, giving expected O(log n + matches) conflict
// checks instead of the naive linear scan (which is retained as
// naiveConflict for property testing).
type index struct {
	root *inode
	rng  *rand.Rand
	seq  uint64
}

// inode is one granted lock in the treap.
type inode struct {
	lock     held
	seq      uint64 // tie-breaker making keys unique
	priority int64
	maxHi    keyspace.Key
	left     *inode
	right    *inode
}

// newIndex builds an empty index with a deterministic priority source.
func newIndex() *index {
	return &index{rng: rand.New(rand.NewSource(0x51ED))}
}

// less orders nodes by (lock range low endpoint, sequence).
func (n *inode) lessThan(lo keyspace.Key, seq uint64) bool {
	if c := n.lock.rng.Lo.Compare(lo); c != 0 {
		return c < 0
	}
	return n.seq < seq
}

// fix recomputes the maxHi augmentation from children.
func (n *inode) fix() {
	n.maxHi = n.lock.rng.Hi
	if n.left != nil && n.maxHi.Less(n.left.maxHi) {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.maxHi.Less(n.right.maxHi) {
		n.maxHi = n.right.maxHi
	}
}

// insert adds a granted lock and returns its node (kept by the caller
// for O(log n) deletion on release).
func (ix *index) insert(h held) *inode {
	ix.seq++
	n := &inode{
		lock:     h,
		seq:      ix.seq,
		priority: ix.rng.Int63(),
	}
	n.fix()
	ix.root = insertNode(ix.root, n)
	return n
}

// insertNode is the standard treap insertion with rotations restoring
// the heap property on priorities.
func insertNode(root, n *inode) *inode {
	if root == nil {
		return n
	}
	if n.lessThan(root.lock.rng.Lo, root.seq) {
		root.left = insertNode(root.left, n)
		if root.left.priority > root.priority {
			root = rotateRight(root)
		}
	} else {
		root.right = insertNode(root.right, n)
		if root.right.priority > root.priority {
			root = rotateLeft(root)
		}
	}
	root.fix()
	return root
}

// remove deletes the exact node (matched by key and sequence).
func (ix *index) remove(n *inode) {
	ix.root = removeNode(ix.root, n)
}

func removeNode(root, n *inode) *inode {
	if root == nil {
		return nil
	}
	switch {
	case root.seq == n.seq:
		// Rotate the victim down until it is a leaf.
		if root.left == nil {
			return root.right
		}
		if root.right == nil {
			return root.left
		}
		if root.left.priority > root.right.priority {
			root = rotateRight(root)
			root.right = removeNode(root.right, n)
		} else {
			root = rotateLeft(root)
			root.left = removeNode(root.left, n)
		}
	case n.lessThan(root.lock.rng.Lo, root.seq):
		root.left = removeNode(root.left, n)
	default:
		root.right = removeNode(root.right, n)
	}
	root.fix()
	return root
}

func rotateRight(n *inode) *inode {
	l := n.left
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func rotateLeft(n *inode) *inode {
	r := n.right
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}

// conflict returns the oldest holder incompatible with the request,
// pruning by the maxHi augmentation: a subtree whose maximum high
// endpoint sorts below rng.Lo cannot intersect rng, and a node whose low
// endpoint sorts above rng.Hi rules out its entire right subtree.
func (ix *index) conflict(txn TxnID, mode Mode, rng interval.Range) (TxnID, bool) {
	var minID TxnID
	found := false
	var walk func(n *inode)
	walk = func(n *inode) {
		if n == nil || n.maxHi.Less(rng.Lo) {
			return
		}
		walk(n.left)
		if !Compatible(txn, mode, rng, n.lock.txn, n.lock.mode, n.lock.rng) {
			if !found || n.lock.txn < minID {
				minID = n.lock.txn
				found = true
			}
		}
		if !rng.Hi.Less(n.lock.rng.Lo) {
			walk(n.right)
		}
	}
	walk(ix.root)
	return minID, found
}
