package keyspace

import (
	"errors"
	"fmt"
)

// Wire codes for the three key kinds, used by MarshalBinary and the RPC
// layer. The values are part of the on-wire contract; do not renumber.
const (
	wireLow    byte = 1
	wireNormal byte = 2
	wireHigh   byte = 3
)

var errShortKey = errors.New("keyspace: truncated key encoding")

// MarshalBinary encodes the key as a one-byte kind tag followed by the
// spelling for normal keys. It never fails.
func (k Key) MarshalBinary() ([]byte, error) {
	switch k.k {
	case kindLow:
		return []byte{wireLow}, nil
	case kindHigh:
		return []byte{wireHigh}, nil
	default:
		out := make([]byte, 1+len(k.s))
		out[0] = wireNormal
		copy(out[1:], k.s)
		return out, nil
	}
}

// GobEncode implements gob.GobEncoder so keys with unexported fields can
// travel through the gob-based RPC transport and log files.
func (k Key) GobEncode() ([]byte, error) { return k.MarshalBinary() }

// GobDecode implements gob.GobDecoder.
func (k *Key) GobDecode(data []byte) error { return k.UnmarshalBinary(data) }

// UnmarshalBinary decodes a key produced by MarshalBinary.
func (k *Key) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return errShortKey
	}
	switch data[0] {
	case wireLow:
		*k = Low()
	case wireHigh:
		*k = High()
	case wireNormal:
		*k = New(string(data[1:]))
	default:
		return fmt.Errorf("keyspace: unknown key kind tag %d", data[0])
	}
	return nil
}
