// Package keyspace defines the totally ordered key domain used by
// replicated directories.
//
// The domain contains two distinguished sentinel keys, LOW and HIGH, that
// bound every insertable key: LOW sorts strictly before any normal key and
// HIGH sorts strictly after. Every directory representative permanently
// stores entries for LOW and HIGH so that each key has a real predecessor
// and a real successor (paper, section 3.1). Sentinels cannot be inserted,
// updated, or deleted through a directory suite.
package keyspace

import (
	"fmt"
	"strconv"
	"strings"
)

// kind orders the three classes of keys: LOW < all normal keys < HIGH.
type kind int8

const (
	kindLow    kind = -1
	kindNormal kind = 0
	kindHigh   kind = 1
)

// Key is a value in the directory's ordered key domain. The zero Key is
// not valid; construct keys with New, Low, or High. Key is comparable and
// may be used as a map key.
type Key struct {
	k kind
	s string
}

// Low returns the LOW sentinel, which sorts before every normal key.
func Low() Key { return Key{k: kindLow} }

// High returns the HIGH sentinel, which sorts after every normal key.
func High() Key { return Key{k: kindHigh} }

// New returns the normal key with the given spelling. Any string,
// including the empty string, is a valid normal key.
func New(s string) Key { return Key{k: kindNormal, s: s} }

// FromUint64 returns a normal key whose spelling is the zero-padded
// decimal rendering of n. Keys produced this way sort in numeric order,
// which makes them convenient for simulations and examples.
func FromUint64(n uint64) Key {
	return Key{k: kindNormal, s: fmt.Sprintf("%020d", n)}
}

// IsSentinel reports whether k is LOW or HIGH.
func (k Key) IsSentinel() bool { return k.k != kindNormal }

// IsLow reports whether k is the LOW sentinel.
func (k Key) IsLow() bool { return k.k == kindLow }

// IsHigh reports whether k is the HIGH sentinel.
func (k Key) IsHigh() bool { return k.k == kindHigh }

// Raw returns the spelling of a normal key. Sentinels have no spelling;
// Raw returns "" for them.
func (k Key) Raw() string {
	if k.IsSentinel() {
		return ""
	}
	return k.s
}

// Compare returns -1, 0, or +1 as k sorts before, equal to, or after o.
func (k Key) Compare(o Key) int {
	switch {
	case k.k < o.k:
		return -1
	case k.k > o.k:
		return 1
	case k.k != kindNormal:
		return 0
	default:
		return strings.Compare(k.s, o.s)
	}
}

// Less reports whether k sorts strictly before o.
func (k Key) Less(o Key) bool { return k.Compare(o) < 0 }

// Equal reports whether k and o are the same key.
func (k Key) Equal(o Key) bool { return k.Compare(o) == 0 }

// String renders the key for logs and error messages. Sentinels render as
// "<LOW>" and "<HIGH>"; normal keys render quoted.
func (k Key) String() string {
	switch k.k {
	case kindLow:
		return "<LOW>"
	case kindHigh:
		return "<HIGH>"
	default:
		return strconv.Quote(k.s)
	}
}

// Min returns the smaller of a and b.
func Min(a, b Key) Key {
	if b.Less(a) {
		return b
	}
	return a
}

// Max returns the larger of a and b.
func Max(a, b Key) Key {
	if a.Less(b) {
		return b
	}
	return a
}
