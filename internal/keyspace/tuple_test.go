package keyspace

import (
	"reflect"
	"testing"
	"testing/quick"
)

// tupleLess is the reference lexicographic tuple ordering.
func tupleLess(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func TestEncodeDecodeTupleRoundTrip(t *testing.T) {
	tests := [][]string{
		{"a"},
		{"a", "b"},
		{"", ""},
		{"with\x00nul", "x"},
		{"with\x00\x01both", "and\xff高"},
		{"a", "", "c"},
	}
	for _, tt := range tests {
		k := EncodeTuple(tt...)
		got, err := DecodeTuple(k)
		if err != nil {
			t.Fatalf("decode(%q): %v", tt, err)
		}
		if !reflect.DeepEqual(got, tt) {
			t.Errorf("round trip %q -> %q", tt, got)
		}
	}
}

func TestDecodeTupleRejectsBadEncodings(t *testing.T) {
	bad := []Key{
		New("dangling\x00"),
		New("bad\x00\x02escape"),
		Low(),
		High(),
	}
	for _, k := range bad {
		if _, err := DecodeTuple(k); err == nil {
			t.Errorf("DecodeTuple(%s) should fail", k)
		}
	}
}

// TestTupleOrderPreservedProperty: encoded keys compare exactly like the
// tuples they encode.
func TestTupleOrderPreservedProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 string, aTwo, bTwo bool) bool {
		a := []string{a1}
		if aTwo {
			a = append(a, a2)
		}
		b := []string{b1}
		if bTwo {
			b = append(b, b2)
		}
		ka, kb := EncodeTuple(a...), EncodeTuple(b...)
		switch {
		case tupleLess(a, b):
			return ka.Less(kb)
		case tupleLess(b, a):
			return kb.Less(ka)
		default:
			return ka.Equal(kb)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestTupleInjectiveProperty: distinct tuples never collide.
func TestTupleInjectiveProperty(t *testing.T) {
	f := func(a1, a2, b1 string) bool {
		// ("a1", "a2") must differ from ("a1a2") and ("b1") unless equal
		// as tuples.
		two := EncodeTuple(a1, a2)
		joined := EncodeTuple(a1 + a2)
		one := EncodeTuple(b1)
		if two.Equal(joined) {
			return false
		}
		if one.Equal(two) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTuplePrefixRange(t *testing.T) {
	after, upper := TuplePrefixRange("svc", "db")
	inside := []Key{
		EncodeTuple("svc", "db", "host1"),
		EncodeTuple("svc", "db", ""),
		EncodeTuple("svc", "db", "a", "b"),
	}
	outside := []Key{
		EncodeTuple("svc", "db"), // the prefix itself is excluded (scan is exclusive of 'after')
		EncodeTuple("svc", "dbx"),
		EncodeTuple("svc", "da"),
		EncodeTuple("svc"),
		EncodeTuple("svc", "db\x00"),
	}
	for _, k := range inside {
		if !(after.Less(k) && k.Less(upper)) {
			t.Errorf("%s should fall inside (%s, %s)", k, after, upper)
		}
	}
	for _, k := range outside {
		if after.Less(k) && k.Less(upper) {
			t.Errorf("%s should fall outside (%s, %s)", k, after, upper)
		}
	}
}
