package keyspace

import (
	"errors"
	"fmt"
	"strings"
)

// Tuple encoding: applications often need hierarchical keys
// ("service/host/port"). Naive joining breaks ordering — "a/b" vs "a!"
// compares by the separator byte — and forbids separators inside
// components. EncodeTuple produces an order-preserving, injective
// encoding: tuples compare lexicographically component by component,
// with a shorter tuple sorting before any extension of it.
//
// The encoding escapes 0x00 inside components as 0x00 0xFF and joins
// components with 0x00 0x01. Because 0x01 sorts below every escaped or
// raw component byte, component boundaries dominate the comparison
// exactly like tuple order requires.

const (
	tupleEscape    = "\x00\xff"
	tupleSeparator = "\x00\x01"
)

// EncodeTuple encodes components into a single normal Key whose ordering
// matches lexicographic tuple ordering.
func EncodeTuple(components ...string) Key {
	var b strings.Builder
	for i, c := range components {
		if i > 0 {
			b.WriteString(tupleSeparator)
		}
		b.WriteString(strings.ReplaceAll(c, "\x00", tupleEscape))
	}
	return New(b.String())
}

// ErrNotTuple reports a key whose spelling is not a valid tuple encoding.
var ErrNotTuple = errors.New("keyspace: invalid tuple encoding")

// DecodeTuple recovers the components of a key produced by EncodeTuple.
func DecodeTuple(k Key) ([]string, error) {
	if k.IsSentinel() {
		return nil, fmt.Errorf("%w: sentinel key", ErrNotTuple)
	}
	raw := k.Raw()
	if raw == "" {
		return []string{""}, nil
	}
	var components []string
	var cur strings.Builder
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c != 0x00 {
			cur.WriteByte(c)
			continue
		}
		if i+1 >= len(raw) {
			return nil, fmt.Errorf("%w: dangling escape", ErrNotTuple)
		}
		i++
		switch raw[i] {
		case 0xff:
			cur.WriteByte(0x00)
		case 0x01:
			components = append(components, cur.String())
			cur.Reset()
		default:
			return nil, fmt.Errorf("%w: bad escape byte %#x", ErrNotTuple, raw[i])
		}
	}
	return append(components, cur.String()), nil
}

// TuplePrefixRange returns the half-open scan bounds (after, before) such
// that Suite.Scan(after) started at the range's beginning visits exactly
// the keys whose tuple encoding extends the given prefix components.
// after sorts immediately before the first extension; upperBound sorts
// immediately after the last one.
func TuplePrefixRange(components ...string) (after, upperBound Key) {
	base := EncodeTuple(components...).Raw()
	// Extensions are base + separator + more. The separator 0x00 0x01 is
	// the smallest possible continuation that is a valid extension, so:
	// after = base itself (scans are exclusive of 'after'), and anything
	// >= base+0x00+0x02 is beyond all extensions.
	return New(base), New(base + "\x00\x02")
}
