package keyspace_test

import (
	"fmt"
	"log"

	"repdir/internal/keyspace"
)

// ExampleEncodeTuple shows order-preserving hierarchical keys: tuple
// order survives the flattening, even with separators and NULs inside
// components.
func ExampleEncodeTuple() {
	a := keyspace.EncodeTuple("svc", "db")
	b := keyspace.EncodeTuple("svc", "db", "host1")
	c := keyspace.EncodeTuple("svc", "web")

	fmt.Println(a.Less(b), b.Less(c))

	comps, err := keyspace.DecodeTuple(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(comps)
	// Output:
	// true true
	// [svc db host1]
}
