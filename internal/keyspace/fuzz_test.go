package keyspace

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinary feeds arbitrary bytes to the key decoder: it must
// never panic, and every successfully decoded key must re-encode to a
// form that decodes back to an equal key.
func FuzzUnmarshalBinary(f *testing.F) {
	seed, _ := New("hello").MarshalBinary()
	f.Add(seed)
	low, _ := Low().MarshalBinary()
	f.Add(low)
	high, _ := High().MarshalBinary()
	f.Add(high)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		var k Key
		if err := k.UnmarshalBinary(data); err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		out, err := k.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of decoded key failed: %v", err)
		}
		var back Key
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !back.Equal(k) {
			t.Fatalf("round trip changed key: %s vs %s", k, back)
		}
		// Canonical form: re-encoding a decoded normal key reproduces
		// the input.
		if !k.IsSentinel() && !bytes.Equal(out, data) {
			t.Fatalf("encoding not canonical: %x vs %x", out, data)
		}
	})
}

// FuzzTupleRoundTrip: arbitrary components survive encode/decode, and
// arbitrary bytes never panic the decoder.
func FuzzTupleRoundTrip(f *testing.F) {
	f.Add("a", "b", []byte("probe"))
	f.Add("", "\x00", []byte{0x00})
	f.Add("x\x00\x01y", "\xff", []byte{0x00, 0x01})
	f.Fuzz(func(t *testing.T, c1, c2 string, raw []byte) {
		k := EncodeTuple(c1, c2)
		comps, err := DecodeTuple(k)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if len(comps) != 2 || comps[0] != c1 || comps[1] != c2 {
			t.Fatalf("round trip (%q,%q) -> %q", c1, c2, comps)
		}
		// Arbitrary bytes: decode may fail but must not panic, and any
		// successful decode must re-encode to the same key.
		if comps, err := DecodeTuple(New(string(raw))); err == nil {
			if !EncodeTuple(comps...).Equal(New(string(raw))) {
				t.Fatalf("decode/encode of %x not canonical", raw)
			}
		}
	})
}

// FuzzCompareOrdering checks that Compare stays antisymmetric for
// arbitrary spellings.
func FuzzCompareOrdering(f *testing.F) {
	f.Add("a", "b")
	f.Add("", "")
	f.Add("zz", "z")
	f.Fuzz(func(t *testing.T, a, b string) {
		ka, kb := New(a), New(b)
		if ka.Compare(kb) != -kb.Compare(ka) {
			t.Fatalf("Compare(%q,%q) not antisymmetric", a, b)
		}
		if (ka.Compare(kb) == 0) != (a == b) {
			t.Fatalf("Compare equality mismatch for %q vs %q", a, b)
		}
	})
}
