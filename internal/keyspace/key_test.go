package keyspace

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSentinelOrdering(t *testing.T) {
	low, high := Low(), High()
	keys := []Key{New(""), New("a"), New("zzz"), FromUint64(0), FromUint64(1 << 60)}
	for _, k := range keys {
		if !low.Less(k) {
			t.Errorf("LOW should sort before %s", k)
		}
		if !k.Less(high) {
			t.Errorf("%s should sort before HIGH", k)
		}
	}
	if !low.Less(high) {
		t.Error("LOW should sort before HIGH")
	}
	if low.Less(low) || high.Less(high) {
		t.Error("sentinels must not sort before themselves")
	}
}

func TestSentinelIdentity(t *testing.T) {
	if !Low().Equal(Low()) || !High().Equal(High()) {
		t.Error("sentinel constructors must return equal values")
	}
	if Low().Equal(High()) {
		t.Error("LOW must not equal HIGH")
	}
	if !Low().IsSentinel() || !High().IsSentinel() {
		t.Error("sentinels must report IsSentinel")
	}
	if !Low().IsLow() || Low().IsHigh() {
		t.Error("LOW kind predicates wrong")
	}
	if !High().IsHigh() || High().IsLow() {
		t.Error("HIGH kind predicates wrong")
	}
	if New("x").IsSentinel() {
		t.Error("normal keys must not be sentinels")
	}
}

func TestCompareMatchesStringOrder(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"a", "b", -1},
		{"b", "a", 1},
		{"a", "a", 0},
		{"", "a", -1},
		{"ab", "abc", -1},
		{"zz", "z", 1},
	}
	for _, tt := range tests {
		if got := New(tt.a).Compare(New(tt.b)); got != tt.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestFromUint64SortsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nums := make([]uint64, 200)
	for i := range nums {
		nums[i] = rng.Uint64()
	}
	keys := make([]Key, len(nums))
	for i, n := range nums {
		keys[i] = FromUint64(n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for i := range nums {
		if !keys[i].Equal(FromUint64(nums[i])) {
			t.Fatalf("key order diverges from numeric order at %d", i)
		}
	}
}

func TestMinMax(t *testing.T) {
	a, b := New("a"), New("b")
	if !Min(a, b).Equal(a) || !Min(b, a).Equal(a) {
		t.Error("Min wrong")
	}
	if !Max(a, b).Equal(b) || !Max(b, a).Equal(b) {
		t.Error("Max wrong")
	}
	if !Min(Low(), a).Equal(Low()) || !Max(a, High()).Equal(High()) {
		t.Error("Min/Max with sentinels wrong")
	}
}

func TestString(t *testing.T) {
	if Low().String() != "<LOW>" || High().String() != "<HIGH>" {
		t.Error("sentinel rendering wrong")
	}
	if New("ab").String() != `"ab"` {
		t.Errorf("normal key rendering wrong: %s", New("ab"))
	}
}

func TestRawRoundTrip(t *testing.T) {
	if New("payload").Raw() != "payload" {
		t.Error("Raw should return the spelling of a normal key")
	}
	if Low().Raw() != "" || High().Raw() != "" {
		t.Error("sentinel Raw should be empty")
	}
}

// Property: Compare is a total order consistent with Less and Equal.
func TestCompareTotalOrderProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		ka, kb, kc := New(a), New(b), New(c)
		// Antisymmetry.
		if ka.Compare(kb) != -kb.Compare(ka) {
			return false
		}
		// Transitivity (only check the <= chain).
		if ka.Compare(kb) <= 0 && kb.Compare(kc) <= 0 && ka.Compare(kc) > 0 {
			return false
		}
		// Consistency with Less/Equal.
		if ka.Less(kb) != (ka.Compare(kb) < 0) {
			return false
		}
		return ka.Equal(kb) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: binary round trip preserves keys, including sentinels.
func TestBinaryRoundTripProperty(t *testing.T) {
	roundTrip := func(k Key) bool {
		data, err := k.MarshalBinary()
		if err != nil {
			return false
		}
		var back Key
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back.Equal(k)
	}
	if !roundTrip(Low()) || !roundTrip(High()) {
		t.Error("sentinel round trip failed")
	}
	f := func(s string) bool { return roundTrip(New(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var k Key
	if err := k.UnmarshalBinary(nil); err == nil {
		t.Error("empty input should fail")
	}
	if err := k.UnmarshalBinary([]byte{99}); err == nil {
		t.Error("unknown tag should fail")
	}
}
