package repdir

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repdir/internal/core"
	"repdir/internal/model"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/sim"
	"repdir/internal/transport"
	"repdir/internal/txn"
	"repdir/internal/wal"
)

// chaosSeed, when non-zero, replays a single soak seed — the one a
// failing run prints — instead of the default seed sweep:
//
//	go test -run TestChaosSoak -chaos.seed=7 -v
var chaosSeed = flag.Int64("chaos.seed", 0, "replay a single chaos soak seed")

// TestChaosSoak drives a deterministic fault-injection soak per seed:
// thousands of randomized operations against a write-ahead-logged 3-2-2
// suite while internal/fault crashes members (recovering them from
// their logs), partitions them, delays and double-delivers calls, and
// drops replies mid-transaction. Every completed operation is checked
// against the sequential specification in internal/model, in-doubt
// two-phase commits are settled by cooperative termination, and a final
// audit re-reads every touched key. The workload and fault schedule are
// a pure function of the seed, so any failure reproduces from the seed
// this test prints.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	seeds := []int64{1, 2, 3, 4, 5}
	base := sim.ChaosConfig{Operations: 1000}
	if os.Getenv("REPDIR_CHAOS_LONG") != "" {
		seeds = nil
		for s := int64(1); s <= 20; s++ {
			seeds = append(seeds, s)
		}
		base.Operations = 10000
	}
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			cfg := base
			cfg.Seed = seed
			res, err := sim.RunChaos(cfg)
			if err != nil {
				t.Fatalf("seed %d: %v\nreplay: go test -run TestChaosSoak -chaos.seed=%d", seed, err, seed)
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			if len(res.Violations) > 0 {
				t.Errorf("replay: go test -run TestChaosSoak -chaos.seed=%d", seed)
			}
			// The soak must actually have exercised the machinery: faults
			// injected, operations applied, keys audited.
			if res.Applied == 0 {
				t.Errorf("seed %d: no operation ever applied", seed)
			}
			if res.AuditedKeys == 0 {
				t.Errorf("seed %d: audit checked no keys", seed)
			}
			total := res.Faults.Crashes + res.Faults.CrashAfters + res.Faults.Partitions +
				res.Faults.Duplicates + res.Faults.DroppedReplies
			if total == 0 {
				t.Errorf("seed %d: fault injector injected nothing", seed)
			}
			// Convergence phase: after the healer finishes, every replica
			// must physically agree on every current entry; any leftover
			// ghost must be provably dominated. Crash/restart seeds leave
			// real divergence behind, so the healer must also have done
			// actual catch-up work.
			if !res.Converged {
				t.Errorf("seed %d: replicas did not converge after healing", seed)
			}
			if res.Faults.Restarts > 0 && res.Heal.Scanned == 0 {
				t.Errorf("seed %d: healer scanned nothing despite %d restarts", seed, res.Faults.Restarts)
			}
			// The breaker must have seen the injected outages: windows
			// long enough to trip it occur on every default-plan seed.
			if res.Health.Trips == 0 {
				t.Errorf("seed %d: circuit breaker never opened despite %d outage windows",
					seed, res.Faults.Crashes+res.Faults.Partitions)
			}
			// The storage-fault phase must have run: a minority of members
			// lost log records mid-run and came back through the
			// rebuild-from-peers path, visible in the storage metrics the
			// observer would export in production.
			if res.StorageLosses == 0 || res.Rebuilds == 0 {
				t.Errorf("seed %d: storage phase injected %d losses, completed %d rebuilds",
					seed, res.StorageLosses, res.Rebuilds)
			}
			if res.Storage.Rebuilds == 0 {
				t.Errorf("seed %d: rebuild not counted in storage metrics: %+v", seed, res.Storage)
			}
			t.Logf("seed %d: applied=%d observed=%d indeterminate=%d lookups=%d audited=%d "+
				"crashes=%d partitions=%d duplicates=%d drops=%d restarts=%d resolved=%d strays=%d repcalls=%d "+
				"trips=%d fastfails=%d probes=%d healed=%d ghosts=%d "+
				"storagelost=%d recordslost=%d rebuilds=%d rebuilt=%d gaps=%d",
				seed, res.Applied, res.Observed, res.Indeterminate, res.Lookups, res.AuditedKeys,
				res.Faults.Crashes+res.Faults.CrashAfters, res.Faults.Partitions,
				res.Faults.Duplicates, res.Faults.DroppedReplies, res.Faults.Restarts,
				res.Resolved, res.StraysAborted, res.RepCalls,
				res.Health.Trips, res.Health.FastFails, res.Health.Probes,
				res.Heal.Copied+res.Heal.Freshened, res.GhostsLeft,
				res.StorageLosses, res.RecordsLost, res.Rebuilds,
				res.Rebuild.Copied+res.Rebuild.Freshened, res.Rebuild.Gaps)
		})
	}
}

// TestChaosSoakSharded drives the soak through a 4-shard router
// instead of a bare suite: per-shard fault injectors and suites behind
// shard.Router, a workload widened with cross-shard transactional
// upserts, cooperative termination running across the union of all
// shards' members (a cross-shard in-doubt transaction needs every
// participant for a safe decision), and periodic sharded Counts checked
// against the sequential model's [min, max] bounds — the torn-cut
// detector for the router's one-transaction stitching.
func TestChaosSoakSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	seeds := []int64{1, 2, 3}
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			res, err := sim.RunChaos(sim.ChaosConfig{Seed: seed, Shards: 4, Operations: 800})
			if err != nil {
				t.Fatalf("seed %d: %v\nreplay: go test -run TestChaosSoakSharded -chaos.seed=%d", seed, err, seed)
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			if len(res.Violations) > 0 {
				t.Errorf("replay: go test -run TestChaosSoakSharded -chaos.seed=%d", seed)
			}
			// The sharded machinery must actually have been exercised.
			if res.Applied == 0 {
				t.Errorf("seed %d: no operation ever applied", seed)
			}
			if res.AuditedKeys == 0 {
				t.Errorf("seed %d: audit checked no keys", seed)
			}
			if res.CrossShardTxns == 0 {
				t.Errorf("seed %d: no transaction ever spanned shards", seed)
			}
			if res.Counts == 0 {
				t.Errorf("seed %d: no Count was ever checked against the model", seed)
			}
			total := res.Faults.Crashes + res.Faults.CrashAfters + res.Faults.Partitions +
				res.Faults.Duplicates + res.Faults.DroppedReplies
			if total == 0 {
				t.Errorf("seed %d: fault injectors injected nothing", seed)
			}
			if !res.Converged {
				t.Errorf("seed %d: replicas did not converge after healing", seed)
			}
			if res.StorageLosses == 0 || res.Rebuilds == 0 {
				t.Errorf("seed %d: storage phase injected %d losses, completed %d rebuilds",
					seed, res.StorageLosses, res.Rebuilds)
			}
			t.Logf("seed %d: applied=%d observed=%d indeterminate=%d lookups=%d audited=%d "+
				"counts=%d countfails=%d xshard=%d crashes=%d partitions=%d restarts=%d "+
				"resolved=%d strays=%d healed=%d ghosts=%d rebuilds=%d",
				seed, res.Applied, res.Observed, res.Indeterminate, res.Lookups, res.AuditedKeys,
				res.Counts, res.CountFailures, res.CrossShardTxns,
				res.Faults.Crashes+res.Faults.CrashAfters, res.Faults.Partitions, res.Faults.Restarts,
				res.Resolved, res.StraysAborted, res.Heal.Copied+res.Heal.Freshened,
				res.GhostsLeft, res.Rebuilds)
		})
	}
}

// TestChaosShardedDeterministic replays one sharded seed twice and
// requires identical results, so printed sharded seeds replay too.
func TestChaosShardedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	cfg := sim.ChaosConfig{Seed: 17, Shards: 2, Operations: 400}
	a, err := sim.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Applied != b.Applied || a.Observed != b.Observed ||
		a.Indeterminate != b.Indeterminate || a.Lookups != b.Lookups ||
		a.Counts != b.Counts || a.CountFailures != b.CountFailures ||
		a.CrossShardTxns != b.CrossShardTxns ||
		a.Faults != b.Faults || a.AuditedKeys != b.AuditedKeys ||
		a.Health != b.Health || a.Heal != b.Heal ||
		a.StraysAborted != b.StraysAborted ||
		a.Converged != b.Converged || a.GhostsLeft != b.GhostsLeft {
		t.Errorf("same sharded seed, different runs:\n  %+v\n  %+v", a, b)
	}
}

// TestChaosSoakDeterministic replays one seed twice and requires
// identical results — the property that makes printed seeds replayable.
func TestChaosSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	cfg := sim.ChaosConfig{Seed: 11, Operations: 400}
	a, err := sim.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Applied != b.Applied || a.Observed != b.Observed ||
		a.Indeterminate != b.Indeterminate || a.Lookups != b.Lookups ||
		a.Faults != b.Faults || a.AuditedKeys != b.AuditedKeys ||
		a.Health != b.Health || a.Heal != b.Heal ||
		a.StraysAborted != b.StraysAborted ||
		a.Converged != b.Converged || a.GhostsLeft != b.GhostsLeft ||
		a.StorageLosses != b.StorageLosses || a.RecordsLost != b.RecordsLost ||
		a.Rebuilds != b.Rebuilds || a.Rebuild != b.Rebuild || a.Storage != b.Storage {
		t.Errorf("same seed, different runs:\n  %+v\n  %+v", a, b)
	}
	// Outcome accounting must balance under fault injection too: every
	// accepted operation commits, fails, or is cancelled — nothing leaks.
	for _, r := range []sim.ChaosResult{a, b} {
		if got := r.Suite.Commits + r.Suite.Failures + r.Suite.Cancelled; got != r.Suite.Calls {
			t.Errorf("accounting: commits %d + failures %d + cancelled %d != calls %d",
				r.Suite.Commits, r.Suite.Failures, r.Suite.Cancelled, r.Suite.Calls)
		}
	}
}

// TestChaosSoakChurn layers membership churn over the soak: at three
// seed-scheduled points the run reconfigures online — adds a full
// member, adds a zero-data witness, then removes the newcomer while
// reweighting a survivor — all through the epoch-fenced two-phase
// protocol, racing the same crash/partition/storage-loss schedule.
// After every switch the harness probes that a client still holding
// the superseded configuration is fenced with rep.ErrStaleEpoch, and
// the final audit runs against the membership actually in force.
func TestChaosSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	churn := true
	seeds := []int64{1, 2, 3}
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			res, err := sim.RunChaos(sim.ChaosConfig{Seed: seed, Operations: 800, Churn: &churn})
			if err != nil {
				t.Fatalf("seed %d: %v\nreplay: go test -run TestChaosSoakChurn -chaos.seed=%d", seed, err, seed)
			}
			for _, v := range res.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			if len(res.Violations) > 0 {
				t.Errorf("replay: go test -run TestChaosSoakChurn -chaos.seed=%d", seed)
			}
			// All three scheduled reconfigurations must have completed,
			// each a two-phase (joint, then stable) transition: epoch 1
			// from Init plus two per step.
			if res.Reconfigs != 3 {
				t.Errorf("seed %d: %d reconfigurations completed, want 3", seed, res.Reconfigs)
			}
			if res.Epochs != 7 {
				t.Errorf("seed %d: final epoch %d, want 7 (init + 3 joint transitions)", seed, res.Epochs)
			}
			if len(res.ChurnEvents) != 3 {
				t.Errorf("seed %d: churn events %v, want 3", seed, res.ChurnEvents)
			}
			// The no-mixing invariant must have been asserted live: every
			// switch fenced the old configuration's client.
			if res.StaleProbes != 3 {
				t.Errorf("seed %d: %d stale-epoch probes fenced, want 3", seed, res.StaleProbes)
			}
			if res.Reconfig.Epochs != 7 {
				t.Errorf("seed %d: observer counted %d epoch advances, want 7", seed, res.Reconfig.Epochs)
			}
			if res.Reconfig.StaleRejections == 0 {
				t.Errorf("seed %d: no stale-epoch rejection ever counted", seed)
			}
			// The witness must actually have served read-quorum votes
			// after joining (workload plus final audit reads).
			if res.Reconfig.WitnessVotes == 0 {
				t.Errorf("seed %d: witness never served a read-quorum vote", seed)
			}
			// The usual soak guarantees still hold under churn.
			if res.Applied == 0 {
				t.Errorf("seed %d: no operation ever applied", seed)
			}
			if res.AuditedKeys == 0 {
				t.Errorf("seed %d: audit checked no keys", seed)
			}
			if !res.Converged {
				t.Errorf("seed %d: replicas did not converge after healing", seed)
			}
			total := res.Faults.Crashes + res.Faults.CrashAfters + res.Faults.Partitions +
				res.Faults.Duplicates + res.Faults.DroppedReplies
			if total == 0 {
				t.Errorf("seed %d: fault injector injected nothing", seed)
			}
			t.Logf("seed %d: applied=%d observed=%d indeterminate=%d audited=%d "+
				"reconfigs=%d epoch=%d staleprobes=%d stalerejects=%d witnessvotes=%d "+
				"crashes=%d partitions=%d restarts=%d healed=%d ghosts=%d\nevents: %v",
				seed, res.Applied, res.Observed, res.Indeterminate, res.AuditedKeys,
				res.Reconfigs, res.Epochs, res.StaleProbes,
				res.Reconfig.StaleRejections, res.Reconfig.WitnessVotes,
				res.Faults.Crashes+res.Faults.CrashAfters, res.Faults.Partitions,
				res.Faults.Restarts, res.Heal.Copied+res.Heal.Freshened, res.GhostsLeft,
				res.ChurnEvents)
		})
	}
}

// TestChaosSoakChurnSharded runs the churn schedule on every shard of
// a two-shard router: reconfigurations go through the managers while
// the workload keeps driving the router, whose suites are swapped
// under a lock as epochs advance.
func TestChaosSoakChurnSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	churn := true
	seed := int64(2)
	if *chaosSeed != 0 {
		seed = *chaosSeed
	}
	res, err := sim.RunChaos(sim.ChaosConfig{Seed: seed, Shards: 2, Operations: 800, Churn: &churn})
	if err != nil {
		t.Fatalf("seed %d: %v\nreplay: go test -run TestChaosSoakChurnSharded -chaos.seed=%d", seed, err, seed)
	}
	for _, v := range res.Violations {
		t.Errorf("seed %d: %s", seed, v)
	}
	if res.Reconfigs != 6 {
		t.Errorf("seed %d: %d reconfigurations completed, want 6 (3 per shard)", seed, res.Reconfigs)
	}
	if res.Epochs != 14 {
		t.Errorf("seed %d: summed final epochs %d, want 14 (7 per shard)", seed, res.Epochs)
	}
	if res.StaleProbes != 6 {
		t.Errorf("seed %d: %d stale-epoch probes fenced, want 6", seed, res.StaleProbes)
	}
	if res.CrossShardTxns == 0 {
		t.Errorf("seed %d: no transaction ever spanned shards", seed)
	}
	if !res.Converged {
		t.Errorf("seed %d: replicas did not converge after healing", seed)
	}
	t.Logf("seed %d: applied=%d audited=%d xshard=%d reconfigs=%d epochs=%d "+
		"staleprobes=%d witnessvotes=%d\nevents: %v",
		seed, res.Applied, res.AuditedKeys, res.CrossShardTxns, res.Reconfigs,
		res.Epochs, res.StaleProbes, res.Reconfig.WitnessVotes, res.ChurnEvents)
}

// TestChaosChurnDeterministic replays one churn seed twice and
// requires identical results — the reconfiguration schedule, the
// epochs reached, and every fence probe included — so printed churn
// seeds replay like any other soak.
func TestChaosChurnDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	churn := true
	cfg := sim.ChaosConfig{Seed: 9, Operations: 400, Churn: &churn}
	a, err := sim.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Applied != b.Applied || a.Observed != b.Observed ||
		a.Indeterminate != b.Indeterminate || a.Lookups != b.Lookups ||
		a.Faults != b.Faults || a.AuditedKeys != b.AuditedKeys ||
		a.Health != b.Health || a.Heal != b.Heal ||
		a.StraysAborted != b.StraysAborted ||
		a.Converged != b.Converged || a.GhostsLeft != b.GhostsLeft ||
		a.Reconfigs != b.Reconfigs || a.Epochs != b.Epochs ||
		a.StaleProbes != b.StaleProbes {
		t.Errorf("same churn seed, different runs:\n  %+v\n  %+v", a, b)
	}
	if fmt.Sprint(a.ChurnEvents) != fmt.Sprint(b.ChurnEvents) {
		t.Errorf("same churn seed, different schedules:\n  %v\n  %v", a.ChurnEvents, b.ChurnEvents)
	}
}

// TestChaosConcurrentClients keeps the live-coordinator coverage the
// deterministic soak cannot provide: several clients race each other
// (each owning a disjoint key range) while a chaos goroutine crashes
// replicas out from under them and recovers them from their logs.
// Operations may fail when quorums are unreachable — failures are fine,
// wrong answers are not. Ground truth is the same sequential
// specification the soak uses; disjoint key ranges keep its per-key
// anchoring sound under concurrency.
func TestChaosConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	ctx := context.Background()
	names := []string{"A", "B", "C"}

	// WAL-backed replicas so crashes are recoverable.
	logs := make([]*wal.MemoryLog, len(names))
	locals := make([]*transport.Local, len(names))
	dirs := make([]rep.Directory, len(names))
	var repMu sync.Mutex // guards replica swap during crash/recover
	reps := make([]*rep.Rep, len(names))
	for i, n := range names {
		logs[i] = &wal.MemoryLog{}
		reps[i] = rep.New(n, rep.WithLog(logs[i]))
		locals[i] = transport.NewLocal(newSwappableRep(&repMu, reps, i))
		dirs[i] = locals[i]
	}
	cfg := quorum.NewUniform(dirs, 2, 2)
	ids := txn.NewIDSource(0)
	// Health-tracked membership plus asynchronous read repair: the
	// breaker fast-fails calls to crashed members, and quorum reads that
	// observe stale copies freshen them in the background while clients
	// keep racing.
	health := core.NewHealthTracker(names, core.HealthConfig{ProbeAfter: 4})
	suite, err := core.NewSuite(cfg, core.WithIDSource(ids), core.WithMaxRetries(48),
		core.WithHealth(health), core.WithReadRepair(64))
	if err != nil {
		t.Fatal(err)
	}
	defer suite.Close()

	spec := model.NewSequential()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Chaos: crash one replica (drop its volatile state), let the suite
	// run degraded, recover it from its log, sometimes repair it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			i := rng.Intn(len(names))
			locals[i].Crash()
			time.Sleep(20 * time.Millisecond)
			// Recover from the WAL: in-flight state is gone, committed
			// state returns; any in-doubt transactions keep their keys
			// locked until a resolver finishes them.
			recovered, err := rep.Recover(names[i], logs[i].Records(), rep.WithLog(logs[i]))
			if err != nil {
				t.Errorf("chaos recover %s: %v", names[i], err)
				return
			}
			repMu.Lock()
			reps[i] = recovered
			repMu.Unlock()
			locals[i].Restart()
			// In-doubt transactions stay blocked until the post-run
			// resolution sweep — resolving here could race a live
			// coordinator. Sometimes run a repair pass.
			if round%3 == 0 {
				// Bounded: repair may block behind in-doubt locks.
				rctx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
				_, _ = core.RepairReplica(rctx, suite, locals[i])
				cancel()
			}
		}
	}()

	// Clients.
	const clients = 4
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			deadline := time.Now().Add(1500 * time.Millisecond)
			for i := 0; time.Now().Before(deadline); i++ {
				key := fmt.Sprintf("c%d-k%d", c, rng.Intn(8))
				val := fmt.Sprintf("v%d-%d", c, i)
				_, exists, level := spec.Get(key)
				certain := level == model.Full
				// Bound every operation: an in-doubt transaction from a
				// crash may hold locks that an older transaction would
				// otherwise wait on forever.
				ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
				switch rng.Intn(3) {
				case 0:
					var err error
					if exists || !certain {
						// Upsert semantics when uncertain: try update,
						// fall back to insert.
						err = suite.Update(ctx, key, val)
						if errors.Is(err, core.ErrKeyNotFound) {
							err = suite.Insert(ctx, key, val)
						}
					} else {
						err = suite.Insert(ctx, key, val)
					}
					switch {
					case err == nil:
						spec.Applied(key, val, true)
					case errors.Is(err, core.ErrKeyExists):
						spec.InsertExists(key, val)
					default:
						spec.Indeterminate(key)
					}
				case 1:
					err := suite.Delete(ctx, key)
					switch {
					case err == nil:
						spec.Applied(key, "", false)
					case errors.Is(err, core.ErrKeyNotFound):
						spec.DeleteNotFound(key)
					default:
						spec.Indeterminate(key)
					}
				case 2:
					got, found, lerr := suite.Lookup(ctx, key)
					if lerr == nil {
						if verr := spec.CheckLookup(key, got, found); verr != nil {
							t.Errorf("client %d: %v", c, verr)
							cancel()
							return
						}
					}
				}
				cancel()
			}
		}(c)
	}

	// Wait for clients, stop chaos.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(1600 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("chaos test wedged")
	}

	// Heal everything, finish anything left in doubt (all coordinators
	// are done now, so resolution is safe), then run the final audit:
	// fully-known keys must match the specification exactly; uncertain
	// keys are re-anchored by their first read and must at least read
	// stably after that.
	for _, l := range locals {
		l.Restart()
	}
	repMu.Lock()
	current := append([]*rep.Rep(nil), reps...)
	repMu.Unlock()
	for _, r := range current {
		for _, id := range r.InDoubt() {
			if _, err := txn.Resolve(ctx, id, dirs); err != nil &&
				!errors.Is(err, txn.ErrUnresolvable) {
				t.Errorf("post-run resolve %d: %v", id, err)
			}
		}
	}
	for _, key := range spec.Keys() {
		for pass := 0; pass < 3; pass++ {
			got, found, err := suite.Lookup(ctx, key)
			if err != nil {
				t.Fatalf("final audit %s: %v", key, err)
			}
			if verr := spec.CheckLookup(key, got, found); verr != nil {
				t.Errorf("final audit: %v", verr)
				break
			}
		}
	}

	// Let in-flight read repairs finish and report the self-healing
	// traffic the run generated. Crash recovery routinely leaves stale
	// copies behind, so enqueues are expected but not guaranteed — the
	// consistency checks above are the assertion; this is visibility.
	dctx, dcancel := context.WithTimeout(ctx, 2*time.Second)
	_ = suite.DrainReadRepair(dctx)
	dcancel()
	st := suite.Stats()
	t.Logf("read repair: enqueued=%d done=%d failed=%d copied=%d freshened=%d dropped=%d",
		st.ReadRepairEnqueued, st.ReadRepairDone, st.ReadRepairFailed,
		st.ReadRepairCopied, st.ReadRepairFreshened, st.ReadRepairDropped)
	t.Logf("health: %+v", health.Stats())
}

// swappableRep lets the chaos goroutine atomically replace a crashed
// replica with its recovered incarnation while clients keep using the
// same rep.Directory handle.
func newSwappableRep(mu *sync.Mutex, reps []*rep.Rep, idx int) rep.Directory {
	return &transport.Middleware{
		Target: func() rep.Directory {
			mu.Lock()
			defer mu.Unlock()
			return reps[idx]
		},
	}
}
