package repdir

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repdir/internal/core"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
	"repdir/internal/txn"
	"repdir/internal/wal"
)

// chaosOracle is the per-key ground truth. A mutation that reports an
// error is *indeterminate*: it may or may not have taken effect (e.g. a
// replica crashed between the two commit phases and the retry saw its
// own partial result), so the key enters an uncertain state until the
// next successful operation re-anchors it — exactly the contract a real
// client has after an ambiguous failure.
type chaosOracle struct {
	mu        sync.Mutex
	data      map[string]string
	present   map[string]bool
	uncertain map[string]bool
}

func newChaosOracle() *chaosOracle {
	return &chaosOracle{
		data:      make(map[string]string),
		present:   make(map[string]bool),
		uncertain: make(map[string]bool),
	}
}

// applied records a successful mutation.
func (o *chaosOracle) applied(key, val string, present bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.data[key] = val
	o.present[key] = present
	o.uncertain[key] = false
}

// failed records an indeterminate mutation.
func (o *chaosOracle) failed(key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.uncertain[key] = true
}

// observe reconciles a successful lookup: if the key is certain, the
// observation must match; if uncertain, the observation becomes the new
// truth. Returns false on a genuine violation.
func (o *chaosOracle) observe(key, val string, found bool) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.uncertain[key] {
		o.data[key] = val
		o.present[key] = found
		o.uncertain[key] = false
		return true
	}
	if found != o.present[key] {
		return false
	}
	return !found || val == o.data[key]
}

// get returns the current belief (value, present, certain).
func (o *chaosOracle) get(key string) (string, bool, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.data[key], o.present[key], !o.uncertain[key]
}

// TestChaos runs concurrent clients against a 3-2-2 suite while a chaos
// goroutine crashes one replica at a time (losing its volatile state and
// recovering it from the write-ahead log) and occasionally repairs it.
// Every client owns a disjoint key range, so each successful operation is
// immediately auditable against the oracle; a final full audit closes the
// run. Operations may fail when quorums are unreachable — failures are
// fine, wrong answers are not.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	ctx := context.Background()
	names := []string{"A", "B", "C"}

	// WAL-backed replicas so crashes are recoverable.
	logs := make([]*wal.MemoryLog, len(names))
	locals := make([]*transport.Local, len(names))
	dirs := make([]rep.Directory, len(names))
	var repMu sync.Mutex // guards replica swap during crash/recover
	reps := make([]*rep.Rep, len(names))
	for i, n := range names {
		logs[i] = &wal.MemoryLog{}
		reps[i] = rep.New(n, rep.WithLog(logs[i]))
		locals[i] = transport.NewLocal(newSwappableRep(&repMu, reps, i))
		dirs[i] = locals[i]
	}
	cfg := quorum.NewUniform(dirs, 2, 2)
	ids := txn.NewIDSource(0)
	suite, err := core.NewSuite(cfg, core.WithIDSource(ids), core.WithMaxRetries(48))
	if err != nil {
		t.Fatal(err)
	}

	oracle := newChaosOracle()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Chaos: crash one replica (drop its volatile state), let the suite
	// run degraded, recover it from its log, sometimes repair it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
			}
			i := rng.Intn(len(names))
			locals[i].Crash()
			time.Sleep(20 * time.Millisecond)
			// Recover from the WAL: in-flight state is gone, committed
			// state returns; any in-doubt transactions keep their keys
			// locked until a resolver finishes them.
			recovered, err := rep.Recover(names[i], logs[i].Records(), rep.WithLog(logs[i]))
			if err != nil {
				t.Errorf("chaos recover %s: %v", names[i], err)
				return
			}
			repMu.Lock()
			reps[i] = recovered
			repMu.Unlock()
			locals[i].Restart()
			// In-doubt transactions stay blocked until the post-run
			// resolution sweep — resolving here could race a live
			// coordinator. Sometimes run a repair pass.
			if round%3 == 0 {
				// Bounded: repair may block behind in-doubt locks.
				rctx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
				_, _ = core.RepairReplica(rctx, suite, locals[i])
				cancel()
			}
		}
	}()

	// Clients.
	const clients = 4
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			deadline := time.Now().Add(1500 * time.Millisecond)
			for i := 0; time.Now().Before(deadline); i++ {
				key := fmt.Sprintf("c%d-k%d", c, rng.Intn(8))
				val := fmt.Sprintf("v%d-%d", c, i)
				_, exists, certain := oracle.get(key)
				// Bound every operation: an in-doubt transaction from a
				// crash may hold locks that an older transaction would
				// otherwise wait on forever.
				ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
				switch rng.Intn(3) {
				case 0:
					var err error
					if exists || !certain {
						// Upsert semantics when uncertain: try update,
						// fall back to insert.
						err = suite.Update(ctx, key, val)
						if errors.Is(err, core.ErrKeyNotFound) {
							err = suite.Insert(ctx, key, val)
						}
					} else {
						err = suite.Insert(ctx, key, val)
					}
					switch {
					case err == nil:
						oracle.applied(key, val, true)
					case errors.Is(err, core.ErrKeyExists):
						// Only reachable when uncertain; stays uncertain.
						oracle.failed(key)
					default:
						oracle.failed(key)
					}
				case 1:
					err := suite.Delete(ctx, key)
					switch {
					case err == nil:
						oracle.applied(key, "", false)
					case errors.Is(err, core.ErrKeyNotFound):
						// A linearizable observation: the key is absent
						// now (possibly because an earlier attempt of
						// this very delete partially committed and won).
						oracle.applied(key, "", false)
					default:
						oracle.failed(key)
					}
				case 2:
					got, found, lerr := suite.Lookup(ctx, key)
					if lerr == nil && !oracle.observe(key, got, found) {
						t.Errorf("client %d: lookup %s = (%q,%v) contradicts certain oracle",
							c, key, got, found)
						cancel()
						return
					}
				}
				cancel()
			}
		}(c)
	}

	// Wait for clients, stop chaos.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(1600 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("chaos test wedged")
	}

	// Heal everything, finish anything left in doubt (all coordinators
	// are done now, so resolution is safe), then run the final audit:
	// certain keys must match the oracle exactly; uncertain keys must at
	// least read stably (repeated quorum lookups agree).
	for _, l := range locals {
		l.Restart()
	}
	repMu.Lock()
	current := append([]*rep.Rep(nil), reps...)
	repMu.Unlock()
	for _, r := range current {
		for _, id := range r.InDoubt() {
			if _, err := txn.Resolve(ctx, id, dirs); err != nil &&
				!errors.Is(err, txn.ErrUnresolvable) {
				t.Errorf("post-run resolve %d: %v", id, err)
			}
		}
	}
	for c := 0; c < clients; c++ {
		for k := 0; k < 8; k++ {
			key := fmt.Sprintf("c%d-k%d", c, k)
			want, exists, certain := oracle.get(key)
			got, found, err := suite.Lookup(ctx, key)
			if err != nil {
				t.Fatalf("final audit %s: %v", key, err)
			}
			if certain {
				if found != exists || (found && got != want) {
					t.Errorf("final audit %s: suite (%q,%v), oracle (%q,%v)",
						key, got, found, want, exists)
				}
				continue
			}
			for trial := 0; trial < 6; trial++ {
				got2, found2, err := suite.Lookup(ctx, key)
				if err != nil {
					t.Fatalf("final audit %s: %v", key, err)
				}
				if found2 != found || (found && got2 != got) {
					t.Errorf("final audit %s: unstable reads (%q,%v) vs (%q,%v)",
						key, got, found, got2, found2)
					break
				}
			}
		}
	}
}

// swappableRep lets the chaos goroutine atomically replace a crashed
// replica with its recovered incarnation while clients keep using the
// same rep.Directory handle.
func newSwappableRep(mu *sync.Mutex, reps []*rep.Rep, idx int) rep.Directory {
	return &transport.Middleware{
		Target: func() rep.Directory {
			mu.Lock()
			defer mu.Unlock()
			return reps[idx]
		},
	}
}
