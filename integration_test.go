package repdir

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repdir/internal/core"
	"repdir/internal/keyspace"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
	"repdir/internal/txn"
	"repdir/internal/wal"
)

// tcpSuite is a full networked deployment for integration tests: three
// representative servers with write-ahead logs, and a suite client
// connected over TCP.
type tcpSuite struct {
	t       *testing.T
	dir     string
	names   []string
	servers []*transport.Server
	logs    []*wal.FileLog
	clients []*transport.Client
	suite   *core.Suite
}

func newTCPSuite(t *testing.T, r, w int) *tcpSuite {
	t.Helper()
	ts := &tcpSuite{
		t:     t,
		dir:   t.TempDir(),
		names: []string{"alpha", "beta", "gamma"},
	}
	ts.servers = make([]*transport.Server, len(ts.names))
	ts.logs = make([]*wal.FileLog, len(ts.names))
	ts.clients = make([]*transport.Client, len(ts.names))
	dirs := make([]rep.Directory, len(ts.names))
	for i := range ts.names {
		ts.startServer(i, "127.0.0.1:0")
		c, err := transport.Dial(ts.servers[i].Addr())
		if err != nil {
			t.Fatal(err)
		}
		ts.clients[i] = c
		dirs[i] = c
	}
	suite, err := core.NewSuite(quorum.NewUniform(dirs, r, w))
	if err != nil {
		t.Fatal(err)
	}
	ts.suite = suite
	t.Cleanup(ts.close)
	return ts
}

// startServer (re)starts representative i, recovering from its WAL.
func (ts *tcpSuite) startServer(i int, addr string) {
	ts.t.Helper()
	walPath := filepath.Join(ts.dir, ts.names[i]+".wal")
	records, err := wal.ReadFileLog(walPath)
	if err != nil {
		records = nil
	}
	log, err := wal.OpenFileLog(walPath)
	if err != nil {
		ts.t.Fatal(err)
	}
	r, err := rep.Recover(ts.names[i], records, rep.WithLog(log))
	if err != nil {
		ts.t.Fatal(err)
	}
	srv, err := transport.Serve(r, addr)
	if err != nil {
		ts.t.Fatal(err)
	}
	ts.servers[i] = srv
	ts.logs[i] = log
}

// crash stops representative i's server and closes its log, returning
// the address it listened on.
func (ts *tcpSuite) crash(i int) string {
	ts.t.Helper()
	addr := ts.servers[i].Addr()
	ts.servers[i].Close()
	ts.logs[i].Close()
	return addr
}

func (ts *tcpSuite) close() {
	for i := range ts.servers {
		if ts.clients[i] != nil {
			ts.clients[i].Close()
		}
		if ts.servers[i] != nil {
			ts.servers[i].Close()
		}
		if ts.logs[i] != nil {
			ts.logs[i].Close()
		}
	}
}

func TestIntegrationTCPBasicOps(t *testing.T) {
	ctx := context.Background()
	ts := newTCPSuite(t, 2, 2)
	if err := ts.suite.Insert(ctx, "k1", "v1"); err != nil {
		t.Fatal(err)
	}
	if v, found, err := ts.suite.Lookup(ctx, "k1"); err != nil || !found || v != "v1" {
		t.Fatalf("lookup = %q %v %v", v, found, err)
	}
	if err := ts.suite.Update(ctx, "k1", "v2"); err != nil {
		t.Fatal(err)
	}
	if err := ts.suite.Delete(ctx, "k1"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := ts.suite.Lookup(ctx, "k1"); found {
		t.Fatal("k1 should be deleted")
	}
	if err := ts.suite.Insert(ctx, "k1", "v3"); err != nil {
		t.Fatal(err)
	}
	if err := ts.suite.Insert(ctx, "k1", "v4"); !errors.Is(err, core.ErrKeyExists) {
		t.Fatalf("double insert over TCP = %v", err)
	}
}

func TestIntegrationCrashRecoveryOverTCP(t *testing.T) {
	ctx := context.Background()
	ts := newTCPSuite(t, 2, 2)
	for i := 0; i < 10; i++ {
		if err := ts.suite.Insert(ctx, fmt.Sprintf("key-%02d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Crash alpha; the suite keeps operating on beta+gamma.
	addr := ts.crash(0)
	if err := ts.suite.Delete(ctx, "key-03"); err != nil {
		t.Fatalf("delete during outage: %v", err)
	}
	if err := ts.suite.Insert(ctx, "key-new", "v"); err != nil {
		t.Fatalf("insert during outage: %v", err)
	}
	// Restart alpha from its WAL on the same address; the client redials
	// transparently.
	ts.startServer(0, addr)
	for trial := 0; trial < 12; trial++ {
		if _, found, err := ts.suite.Lookup(ctx, "key-03"); err != nil || found {
			t.Fatalf("key-03 should stay deleted after recovery: %v %v", found, err)
		}
		if _, found, err := ts.suite.Lookup(ctx, "key-new"); err != nil || !found {
			t.Fatalf("key-new should survive: %v %v", found, err)
		}
	}
	// The recovered replica catches up organically: delete key-00 with
	// alpha possibly in quorums, then verify convergence.
	if err := ts.suite.Delete(ctx, "key-00"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := ts.suite.Lookup(ctx, "key-00"); found {
		t.Fatal("key-00 should be deleted")
	}
}

func TestIntegrationConcurrentNetworkClients(t *testing.T) {
	if testing.Short() {
		t.Skip("network load test")
	}
	ctx := context.Background()
	ts := newTCPSuite(t, 2, 2)

	// Each worker gets its own TCP connections and its own suite client,
	// but all share the servers. Distinct node tags keep wait-die
	// timestamps globally consistent.
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			dirs := make([]rep.Directory, len(ts.servers))
			for i, srv := range ts.servers {
				c, err := transport.Dial(srv.Addr())
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				dirs[i] = c
			}
			suite, err := core.NewSuite(quorum.NewUniform(dirs, 2, 2))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 15; i++ {
				key := fmt.Sprintf("w%d-k%d", wkr, i)
				if err := suite.Insert(ctx, key, "v"); err != nil {
					errs <- fmt.Errorf("insert %s: %w", key, err)
					return
				}
				if i%2 == 0 {
					if err := suite.Delete(ctx, key); err != nil {
						errs <- fmt.Errorf("delete %s: %w", key, err)
						return
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Audit final contents through the main client.
	for wkr := 0; wkr < workers; wkr++ {
		for i := 0; i < 15; i++ {
			key := fmt.Sprintf("w%d-k%d", wkr, i)
			_, found, err := ts.suite.Lookup(ctx, key)
			if err != nil {
				t.Fatal(err)
			}
			if want := i%2 != 0; found != want {
				t.Errorf("%s: found=%v want %v", key, found, want)
			}
		}
	}
}

// TestIntegrationInDoubtResolutionOverTCP simulates a coordinator dying
// between two-phase-commit phases: a transaction is prepared at two
// networked representatives and committed at only one; the second
// representative crashes and recovers IN DOUBT, blocking its key, until
// cooperative termination (txn.Resolve over TCP) finishes the commit.
func TestIntegrationInDoubtResolutionOverTCP(t *testing.T) {
	ctx := context.Background()
	ts := newTCPSuite(t, 2, 2)

	// Drive the transaction manually against two representatives,
	// playing the crashing coordinator.
	const id = 424242
	key := keyspace.New("in-doubt-key")
	for _, i := range []int{0, 1} {
		if err := ts.clients[i].Insert(ctx, id, key, 1, "v"); err != nil {
			t.Fatal(err)
		}
		if err := ts.clients[i].Prepare(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	// Commit reaches only replica 0; the "coordinator" dies here.
	if err := ts.clients[0].Commit(ctx, id); err != nil {
		t.Fatal(err)
	}
	// Replica 1 crashes and recovers from its WAL: in doubt.
	addr := ts.crash(1)
	ts.startServer(1, addr)
	// The first call after a server bounce may fail on the stale
	// connection; the client redials on the next call.
	st, err := ts.clients[1].Status(ctx, id)
	if err != nil {
		st, err = ts.clients[1].Status(ctx, id)
	}
	if err != nil {
		t.Fatal(err)
	}
	if st != rep.StatusInDoubt {
		t.Fatalf("recovered replica status = %v, want in-doubt", st)
	}

	// Resolve over the network using all replicas as the candidate set.
	dirs := make([]rep.Directory, len(ts.clients))
	for i, c := range ts.clients {
		dirs[i] = c
	}
	res, err := txn.Resolve(ctx, id, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatal("resolution must commit: replica 0 holds the commit")
	}
	// Both replicas now agree, and the suite can read the key.
	if v, found, err := ts.suite.Lookup(ctx, "in-doubt-key"); err != nil || !found || v != "v" {
		t.Fatalf("lookup after resolution = %q %v %v", v, found, err)
	}
}

func TestIntegrationTransactionOverTCP(t *testing.T) {
	ctx := context.Background()
	ts := newTCPSuite(t, 2, 2)
	err := ts.suite.RunInTxn(ctx, func(tx *core.Tx) error {
		if err := tx.Insert(ctx, "from", "100"); err != nil {
			return err
		}
		return tx.Insert(ctx, "to", "0")
	})
	if err != nil {
		t.Fatal(err)
	}
	// Transfer atomically.
	err = ts.suite.RunInTxn(ctx, func(tx *core.Tx) error {
		if err := tx.Update(ctx, "from", "60"); err != nil {
			return err
		}
		return tx.Update(ctx, "to", "40")
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _, _ := ts.suite.Lookup(ctx, "from"); v != "60" {
		t.Errorf("from = %q", v)
	}
	if v, _, _ := ts.suite.Lookup(ctx, "to"); v != "40" {
		t.Errorf("to = %q", v)
	}
	// A failing transaction leaves both untouched.
	boom := errors.New("boom")
	err = ts.suite.RunInTxn(ctx, func(tx *core.Tx) error {
		if err := tx.Update(ctx, "from", "0"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("txn error = %v", err)
	}
	if v, _, _ := ts.suite.Lookup(ctx, "from"); v != "60" {
		t.Errorf("aborted txn leaked: from = %q", v)
	}
}
