module repdir

go 1.22
