# Developer entry points. `make check` is the gate CI and pre-commit
# hooks should run: vet + build + full test suite under the race
# detector, plus the deterministic chaos soak.

GO ?= go

.PHONY: check vet build test race bench benchall benchshard benchsmoke benchworkload workload chaos crash shard reconfig obsdeps

check: vet obsdeps build race shard crash chaos reconfig workload benchsmoke

vet:
	$(GO) vet ./...

# internal/obs must stay stdlib-only: it sits at the bottom of the
# import graph (core, transport, and heal all import it), so any
# dependency it grows is a dependency of everything.
obsdeps:
	@deps=$$($(GO) list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' repdir/internal/obs | grep -v '^repdir/internal/obs$$' || true); \
	if [ -n "$$deps" ]; then \
		echo "internal/obs has non-stdlib dependencies:"; echo "$$deps"; exit 1; \
	fi
	@echo "internal/obs is stdlib-only"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault-injection soak (see EXPERIMENTS.md): five seeds,
# 1000 ops each, crash/partition/duplicate/drop injection under -race,
# every completed operation checked against the sequential model. A
# failing seed is printed and replays with -chaos.seed=N. Set
# REPDIR_CHAOS_LONG=1 for the long soak (20 seeds x 10000 ops).
chaos:
	$(GO) test -race -count 1 -run 'TestChaosSoak' -v .

# Sharding gate: the router/suite equivalence suite (every traversal op
# against the same data through a router and through one suite must
# agree, split points placed on, between, and outside the keys), a
# moment of split-placement fuzzing, and the sharded chaos soak driving
# cross-shard transactions and Count checks under fault injection.
shard:
	$(GO) test -race -count 1 -run 'TestEquivalence|TestMap|TestRouter|TestCrossShard|TestManyShards|TestCountConsistent' -v ./internal/shard/
	$(GO) test -run xxx -fuzz FuzzSplitPlacement -fuzztime 10s ./internal/shard/
	$(GO) test -race -count 1 -run 'TestChaosSoakSharded|TestChaosShardedDeterministic' -v .

# Storage-fault gate: the crash-point harness (power loss at every byte
# boundary of a logged workload, one flipped bit at every byte — see
# DESIGN.md section 11) plus a short chaos soak whose storage phase
# wipes a minority of WALs mid-run and rebuilds them from peers. The
# soak seed doubles as the replay handle on failure.
crash:
	$(GO) test -count 1 -run 'TestCrashPoints' -v ./internal/fault/
	$(GO) test -race -count 1 -run 'TestChaosSoakDeterministic' -v .

# Reconfiguration gate: the epoch-fencing/joint-transition unit suite,
# the membership-churn chaos soaks (three online reconfigurations —
# add, add-witness, remove+reweight — racing the fault schedule, with
# a fenced stale-client probe after every switch), and the churn
# determinism replay. Failing soak seeds replay with -chaos.seed=N.
reconfig:
	$(GO) test -race -count 1 ./internal/reconfig/
	$(GO) test -race -count 1 -run 'TestChaosSoakChurn|TestChaosChurnDeterministic' -v .

# Transport + quorum benchmarks, recorded machine-readably: runs the
# wire-codec and quorum-round suite with -benchmem and rewrites the
# BENCH_transport.json ledger (schema: bench/ns_op/bytes_op/allocs_op/
# date/git_rev per entry; see EXPERIMENTS.md for methodology).
TRANSPORT_BENCH = 'BenchmarkTCP|BenchmarkWire'
bench:
	$(GO) test -run xxx -bench $(TRANSPORT_BENCH) -benchmem -benchtime 2s \
		./internal/transport | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_transport.json

# Shard-scaling measurement, recorded machine-readably: the repdir-sim
# shard experiment (aggregate write throughput at 1/2/4/8 shards under a
# serialized per-replica service time) rewrites the BENCH_shard.json
# ledger. The 4-shard point is expected to stay >= 2x the 1-shard point.
benchshard:
	$(GO) run ./cmd/repdir-sim -experiment shard | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_shard.json

# Open-loop workload measurement, recorded machine-readably: a
# million-key zipfian universe over four sticky 3-2-2 shards, driven
# through the standard mixes (read-heavy, update-heavy, scan-heavy,
# read-heavy through client sessions) with coordinated-omission-safe
# latency capture. Rewrites the BENCH_workload.json ledger, whose
# entries carry response-time quantiles and the SLO verdict next to the
# usual ns/op. The run itself fails if any mix misses its SLO.
# (The run goes to a temp file first, not a pipe: /bin/sh reports only
# the last pipeline stage's status, which would let an SLO failure slip
# past make.)
benchworkload:
	$(GO) run ./cmd/repdir-sim -experiment workload -keys 1000000 > /tmp/workload_bench.out
	cat /tmp/workload_bench.out
	$(GO) run ./cmd/benchjson -out BENCH_workload.json < /tmp/workload_bench.out

# Workload smoke gate: a scaled-down open-loop run (20k keys, 1s mixes)
# whose SLO verdicts still gate — shedding or a blown tail fails `make
# check` — plus schema validation of the emitted ledger lines.
workload:
	$(GO) run ./cmd/repdir-sim -experiment workload -keys 20000 -rate 2000 -duration 1s > /tmp/workload_smoke.out
	$(GO) run ./cmd/benchjson -out /tmp/BENCH_workload_smoke.json < /tmp/workload_smoke.out
	$(GO) run ./cmd/benchjson -validate /tmp/BENCH_workload_smoke.json

# CI smoke for the benchmark plumbing: same benchmarks at -benchtime=10x
# (numbers meaningless, schema real), written to a scratch ledger and
# schema-validated. Never gates on the measured values.
benchsmoke:
	$(GO) test -run xxx -bench $(TRANSPORT_BENCH) -benchmem -benchtime 10x \
		./internal/transport | $(GO) run ./cmd/benchjson -out /tmp/BENCH_smoke.json
	$(GO) run ./cmd/benchjson -validate /tmp/BENCH_smoke.json
	$(GO) run ./cmd/benchjson -validate BENCH_transport.json
	$(GO) run ./cmd/benchjson -validate BENCH_shard.json
	$(GO) run ./cmd/benchjson -validate BENCH_workload.json

# Every benchmark in the repo (paper figures included), human-readable.
benchall:
	$(GO) test -run xxx -bench . -benchtime 1s ./...
