# Developer entry points. `make check` is the gate CI and pre-commit
# hooks should run: vet + build + full test suite under the race
# detector, plus the deterministic chaos soak.

GO ?= go

.PHONY: check vet build test race bench chaos crash obsdeps

check: vet obsdeps build race crash chaos

vet:
	$(GO) vet ./...

# internal/obs must stay stdlib-only: it sits at the bottom of the
# import graph (core, transport, and heal all import it), so any
# dependency it grows is a dependency of everything.
obsdeps:
	@deps=$$($(GO) list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' repdir/internal/obs | grep -v '^repdir/internal/obs$$' || true); \
	if [ -n "$$deps" ]; then \
		echo "internal/obs has non-stdlib dependencies:"; echo "$$deps"; exit 1; \
	fi
	@echo "internal/obs is stdlib-only"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault-injection soak (see EXPERIMENTS.md): five seeds,
# 1000 ops each, crash/partition/duplicate/drop injection under -race,
# every completed operation checked against the sequential model. A
# failing seed is printed and replays with -chaos.seed=N. Set
# REPDIR_CHAOS_LONG=1 for the long soak (20 seeds x 10000 ops).
chaos:
	$(GO) test -race -count 1 -run 'TestChaosSoak' -v .

# Storage-fault gate: the crash-point harness (power loss at every byte
# boundary of a logged workload, one flipped bit at every byte — see
# DESIGN.md section 11) plus a short chaos soak whose storage phase
# wipes a minority of WALs mid-run and rebuilds them from peers. The
# soak seed doubles as the replay handle on failure.
crash:
	$(GO) test -count 1 -run 'TestCrashPoints' -v ./internal/fault/
	$(GO) test -race -count 1 -run 'TestChaosSoakDeterministic' -v .

# Transport + paper benchmarks (see EXPERIMENTS.md for methodology).
bench:
	$(GO) test -run xxx -bench . -benchtime 1s ./...
