# Developer entry points. `make check` is the gate CI and pre-commit
# hooks should run: vet + build + full test suite under the race
# detector.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Transport + paper benchmarks (see EXPERIMENTS.md for methodology).
bench:
	$(GO) test -run xxx -bench . -benchtime 1s ./...
