# Developer entry points. `make check` is the gate CI and pre-commit
# hooks should run: vet + build + full test suite under the race
# detector, plus the deterministic chaos soak.

GO ?= go

.PHONY: check vet build test race bench benchall benchshard benchsmoke benchworkload benchoverload benchdiff workload overload raceoverload chaos crash shard reconfig obsdeps

check: vet obsdeps build race shard crash chaos reconfig workload overload raceoverload benchsmoke

vet:
	$(GO) vet ./...

# internal/obs must stay stdlib-only: it sits at the bottom of the
# import graph (core, transport, and heal all import it), so any
# dependency it grows is a dependency of everything.
obsdeps:
	@deps=$$($(GO) list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' repdir/internal/obs | grep -v '^repdir/internal/obs$$' || true); \
	if [ -n "$$deps" ]; then \
		echo "internal/obs has non-stdlib dependencies:"; echo "$$deps"; exit 1; \
	fi
	@echo "internal/obs is stdlib-only"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault-injection soak (see EXPERIMENTS.md): five seeds,
# 1000 ops each, crash/partition/duplicate/drop injection under -race,
# every completed operation checked against the sequential model. A
# failing seed is printed and replays with -chaos.seed=N. Set
# REPDIR_CHAOS_LONG=1 for the long soak (20 seeds x 10000 ops).
chaos:
	$(GO) test -race -count 1 -run 'TestChaosSoak' -v .

# Sharding gate: the router/suite equivalence suite (every traversal op
# against the same data through a router and through one suite must
# agree, split points placed on, between, and outside the keys), a
# moment of split-placement fuzzing, and the sharded chaos soak driving
# cross-shard transactions and Count checks under fault injection.
shard:
	$(GO) test -race -count 1 -run 'TestEquivalence|TestMap|TestRouter|TestCrossShard|TestManyShards|TestCountConsistent' -v ./internal/shard/
	$(GO) test -run xxx -fuzz FuzzSplitPlacement -fuzztime 10s ./internal/shard/
	$(GO) test -race -count 1 -run 'TestChaosSoakSharded|TestChaosShardedDeterministic' -v .

# Storage-fault gate: the crash-point harness (power loss at every byte
# boundary of a logged workload, one flipped bit at every byte — see
# DESIGN.md section 11) plus a short chaos soak whose storage phase
# wipes a minority of WALs mid-run and rebuilds them from peers. The
# soak seed doubles as the replay handle on failure.
crash:
	$(GO) test -count 1 -run 'TestCrashPoints' -v ./internal/fault/
	$(GO) test -race -count 1 -run 'TestChaosSoakDeterministic' -v .

# Reconfiguration gate: the epoch-fencing/joint-transition unit suite,
# the membership-churn chaos soaks (three online reconfigurations —
# add, add-witness, remove+reweight — racing the fault schedule, with
# a fenced stale-client probe after every switch), and the churn
# determinism replay. Failing soak seeds replay with -chaos.seed=N.
reconfig:
	$(GO) test -race -count 1 ./internal/reconfig/
	$(GO) test -race -count 1 -run 'TestChaosSoakChurn|TestChaosChurnDeterministic' -v .

# Transport + quorum benchmarks, recorded machine-readably: runs the
# wire-codec and quorum-round suite with -benchmem and rewrites the
# BENCH_transport.json ledger (schema: bench/ns_op/bytes_op/allocs_op/
# date/git_rev per entry; see EXPERIMENTS.md for methodology).
TRANSPORT_BENCH = 'BenchmarkTCP|BenchmarkWire'
bench:
	$(GO) test -run xxx -bench $(TRANSPORT_BENCH) -benchmem -benchtime 2s \
		./internal/transport | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_transport.json

# Shard-scaling measurement, recorded machine-readably: the repdir-sim
# shard experiment (aggregate write throughput at 1/2/4/8 shards under a
# serialized per-replica service time) rewrites the BENCH_shard.json
# ledger. The 4-shard point is expected to stay >= 2x the 1-shard point.
benchshard:
	$(GO) run ./cmd/repdir-sim -experiment shard | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_shard.json

# Open-loop workload measurement, recorded machine-readably: a
# million-key zipfian universe over four sticky 3-2-2 shards, driven
# through the standard mixes (read-heavy, update-heavy, scan-heavy,
# read-heavy through client sessions) with coordinated-omission-safe
# latency capture. Rewrites the BENCH_workload.json ledger, whose
# entries carry response-time quantiles and the SLO verdict next to the
# usual ns/op. The run itself fails if any mix misses its SLO.
# (The run goes to a temp file first, not a pipe: /bin/sh reports only
# the last pipeline stage's status, which would let an SLO failure slip
# past make.)
benchworkload:
	$(GO) run ./cmd/repdir-sim -experiment workload -keys 1000000 > /tmp/workload_bench.out
	cat /tmp/workload_bench.out
	$(GO) run ./cmd/benchjson -out BENCH_workload.json < /tmp/workload_bench.out

# Workload smoke gate: a scaled-down open-loop run (20k keys, 1s mixes)
# whose SLO verdicts still gate — shedding or a blown tail fails `make
# check` — plus schema validation of the emitted ledger lines.
workload:
	$(GO) run ./cmd/repdir-sim -experiment workload -keys 20000 -rate 2000 -duration 1s > /tmp/workload_smoke.out
	$(GO) run ./cmd/benchjson -out /tmp/BENCH_workload_smoke.json < /tmp/workload_smoke.out
	$(GO) run ./cmd/benchjson -validate /tmp/BENCH_workload_smoke.json

# Overload curve, recorded machine-readably: the repdir-sim overload
# experiment (a TCP 3-2-2 suite with the full protection stack —
# deadline propagation, CoDel admission, retry budgets, hedged reads —
# driven at 0.5/1/1.5/2x its calibrated capacity) rewrites the
# BENCH_overload.json ledger. The run fails unless goodput at 2x stays
# within 20% of peak with a bounded p999 — degradation, not collapse.
benchoverload:
	$(GO) run ./cmd/repdir-sim -experiment overload > /tmp/overload_bench.out
	cat /tmp/overload_bench.out
	$(GO) run ./cmd/benchjson -out BENCH_overload.json < /tmp/overload_bench.out

# Overload smoke gate: the same curve at full length (1s points proved
# too noisy to gate on — a bad patch in one window flips the verdict).
# The pass verdict gates — a goodput collapse or unbounded tail past
# saturation fails `make check` — and the ledger lines are
# schema-checked.
overload:
	$(GO) run ./cmd/repdir-sim -experiment overload > /tmp/overload_smoke.out
	cat /tmp/overload_smoke.out
	$(GO) run ./cmd/benchjson -out /tmp/BENCH_overload_smoke.json < /tmp/overload_smoke.out
	$(GO) run ./cmd/benchjson -validate /tmp/BENCH_overload_smoke.json

# Focused race pass over the overload-protection stack: admission
# control, deadline propagation, retry budgets, and hedged reads are the
# code paths densest in shared atomics and concurrent teardown, so they
# get an extra -count=2 run beyond the suite-wide `race` target.
raceoverload:
	$(GO) test -race -count 2 ./internal/transport/ ./internal/core/

# Ledger regression diff: re-measures the overload curve and compares it
# against the committed BENCH_overload.json, failing on ns/op, quantile,
# or goodput regressions beyond tolerance (or an SLO verdict flipping to
# fail). Tolerance is 1.0 (2x) because the latency histogram's buckets
# are powers of two: one bucket of jitter doubles a quantile, so a
# tighter tolerance would page on noise. A real collapse blows through
# 2x easily — that is what the mode exists to catch.
benchdiff:
	$(GO) run ./cmd/repdir-sim -experiment overload > /tmp/overload_diff.out
	$(GO) run ./cmd/benchjson -out /tmp/BENCH_overload_new.json < /tmp/overload_diff.out
	$(GO) run ./cmd/benchjson -diff -tolerance 1.0 BENCH_overload.json /tmp/BENCH_overload_new.json

# CI smoke for the benchmark plumbing: same benchmarks at -benchtime=10x
# (numbers meaningless, schema real), written to a scratch ledger and
# schema-validated. Never gates on the measured values.
benchsmoke:
	$(GO) test -run xxx -bench $(TRANSPORT_BENCH) -benchmem -benchtime 10x \
		./internal/transport | $(GO) run ./cmd/benchjson -out /tmp/BENCH_smoke.json
	$(GO) run ./cmd/benchjson -validate /tmp/BENCH_smoke.json
	$(GO) run ./cmd/benchjson -validate BENCH_transport.json
	$(GO) run ./cmd/benchjson -validate BENCH_shard.json
	$(GO) run ./cmd/benchjson -validate BENCH_workload.json
	$(GO) run ./cmd/benchjson -validate BENCH_overload.json

# Every benchmark in the repo (paper figures included), human-readable.
benchall:
	$(GO) test -run xxx -bench . -benchtime 1s ./...
