// Package repdir is a complete Go implementation of "An Algorithm for
// Replicated Directories" (Dean Daniels and Alfred Z. Spector, PODC
// 1983 / CMU-CS-83-123): weighted-voting replication for ordered
// key-value directories, with a version number associated with every
// possible key through dynamic range partitioning — entry versions for
// stored keys, gap versions for the ranges between them.
//
// The public surface lives in the internal packages (this module is the
// application); see README.md for the architecture and quick start,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured evaluation. The root package holds the benchmark
// harness that regenerates every figure of the paper's evaluation
// (bench_test.go) and the cross-package integration tests
// (integration_test.go).
package repdir
