// Nameservice: a replicated host -> address naming directory — the kind
// of system directory the paper's introduction motivates — running over
// TCP with write-ahead-logged representatives.
//
// The example starts three representative servers, registers a fleet of
// hosts, then crashes one replica mid-run: reads and writes keep
// succeeding against the surviving quorum. The crashed replica is then
// recovered from its write-ahead log and rejoins; stale answers it may
// hold are outvoted by version numbers.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repdir/internal/core"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
	"repdir/internal/wal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "repdir-nameservice-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Start three representative servers, each with its own WAL.
	names := []string{"ns-east", "ns-west", "ns-central"}
	servers := make([]*transport.Server, len(names))
	logs := make([]*wal.FileLog, len(names))
	for i, n := range names {
		r, l, err := recoverRep(n, filepath.Join(dir, n+".wal"))
		if err != nil {
			return err
		}
		logs[i] = l
		servers[i], err = transport.Serve(r, "127.0.0.1:0")
		if err != nil {
			return err
		}
		fmt.Printf("started %s on %s\n", n, servers[i].Addr())
	}
	defer func() {
		for i := range servers {
			if servers[i] != nil {
				servers[i].Close()
			}
			logs[i].Close()
		}
	}()

	// Connect a suite client: 3 replicas, read quorum 2, write quorum 2.
	clients := make([]rep.Directory, len(servers))
	for i, s := range servers {
		c, err := transport.Dial(s.Addr())
		if err != nil {
			return err
		}
		defer c.Close()
		clients[i] = c
	}
	suite, err := core.NewSuite(quorum.NewUniform(clients, 2, 2))
	if err != nil {
		return err
	}

	// Register a fleet.
	fmt.Println("\n== registering hosts ==")
	hosts := map[string]string{
		"db-1.example.com":    "10.0.0.11",
		"db-2.example.com":    "10.0.0.12",
		"web-1.example.com":   "10.0.1.21",
		"web-2.example.com":   "10.0.1.22",
		"cache-1.example.com": "10.0.2.31",
	}
	for h, addr := range hosts {
		if err := suite.Insert(ctx, h, addr); err != nil {
			return fmt.Errorf("register %s: %w", h, err)
		}
	}
	fmt.Printf("registered %d hosts\n", len(hosts))

	// Crash one replica.
	fmt.Println("\n== crashing ns-east ==")
	servers[0].Close()
	servers[0] = nil

	// The service keeps working on the surviving quorum.
	if addr, found, err := suite.Lookup(ctx, "db-1.example.com"); err != nil || !found {
		return fmt.Errorf("lookup during outage: found=%v err=%w", found, err)
	} else {
		fmt.Println("lookup db-1.example.com ->", addr)
	}
	if err := suite.Update(ctx, "web-1.example.com", "10.0.1.99"); err != nil {
		return fmt.Errorf("update during outage: %w", err)
	}
	if err := suite.Delete(ctx, "cache-1.example.com"); err != nil {
		return fmt.Errorf("delete during outage: %w", err)
	}
	if err := suite.Insert(ctx, "cache-2.example.com", "10.0.2.32"); err != nil {
		return fmt.Errorf("insert during outage: %w", err)
	}
	fmt.Println("update/delete/insert all succeeded with one replica down")

	// Recover the crashed replica from its write-ahead log and rebind.
	fmt.Println("\n== recovering ns-east from its write-ahead log ==")
	logs[0].Close()
	r0, l0, err := recoverRep("ns-east", filepath.Join(dir, "ns-east.wal"))
	if err != nil {
		return err
	}
	logs[0] = l0
	servers[0], err = transport.Serve(r0, "127.0.0.1:0")
	if err != nil {
		return err
	}
	c0, err := transport.Dial(servers[0].Addr())
	if err != nil {
		return err
	}
	defer c0.Close()
	fmt.Printf("ns-east recovered with %d entries (its state predates the outage)\n", r0.Len())

	// Rebuild the suite including the recovered (stale) replica.
	clients[0] = c0
	suite, err = core.NewSuite(quorum.NewUniform(clients, 2, 2))
	if err != nil {
		return err
	}
	checks := []struct {
		host  string
		want  string
		found bool
	}{
		{"web-1.example.com", "10.0.1.99", true}, // updated during outage
		{"cache-1.example.com", "", false},       // deleted during outage
		{"cache-2.example.com", "10.0.2.32", true},
		{"db-2.example.com", "10.0.0.12", true},
	}
	for _, c := range checks {
		for trial := 0; trial < 6; trial++ { // exercise varied quorums
			addr, found, err := suite.Lookup(ctx, c.host)
			if err != nil {
				return err
			}
			if found != c.found || (found && addr != c.want) {
				return fmt.Errorf("stale replica influenced %s: got (%q,%v), want (%q,%v)",
					c.host, addr, found, c.want, c.found)
			}
		}
	}
	fmt.Println("all lookups correct with the stale replica back in rotation:")
	fmt.Println("  version numbers on entries and gaps outvote its stale state")
	return nil
}

// recoverRep builds a representative from its WAL (fresh if none).
func recoverRep(name, walPath string) (*rep.Rep, *wal.FileLog, error) {
	records, err := wal.ReadFileLog(walPath)
	if err != nil {
		records = nil // fresh replica
	}
	l, err := wal.OpenFileLog(walPath)
	if err != nil {
		return nil, nil, err
	}
	r, err := rep.Recover(name, records, rep.WithLog(l))
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	return r, l, nil
}
