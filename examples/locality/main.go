// Locality: the paper's Figure 16 configuration. A 4-2-3 directory suite
// over representatives A1, A2, B1, B2 serves two transaction classes:
// Type A operates on keys 1-50 and runs next to A1/A2; Type B operates on
// keys 51-100 next to B1/B2. With locality-aware quorum selection, every
// inquiry is answered by local representatives, and the single non-local
// message each modification needs is spread evenly over the remote pair.
package main

import (
	"fmt"
	"log"

	"repdir/internal/sim"
)

func main() {
	stats, err := sim.RunFigure16(2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sim.FormatLocality(stats))
	fmt.Println()
	for _, s := range stats {
		if s.LocalReadFraction() != 1.0 {
			log.Fatalf("type %s performed non-local inquiries", s.ClientType)
		}
	}
	fmt.Println("claim check: 100% of inquiries were local for both transaction types,")
	fmt.Println("and each modification sent exactly one message off-site, alternating")
	fmt.Println("between the two remote representatives.")
}
