// Concurrency: the section 2 motivation measured. Clients update disjoint
// entries of (a) a directory replicated with this paper's per-range
// version numbers and range locks, and (b) the same directory stored as a
// single Gifford-replicated file, where one version number per replica
// serializes every modification. Both pay identical simulated
// per-message latency; the speedup is pure concurrency.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repdir/internal/sim"
)

func main() {
	clients := flag.Int("clients", 8, "concurrent clients")
	ops := flag.Int("ops", 25, "updates per client")
	latency := flag.Duration("latency", 200*time.Microsecond, "simulated per-message latency")
	flag.Parse()

	fmt.Printf("running %d clients x %d disjoint updates (per-message latency %v)...\n",
		*clients, *ops, *latency)
	res, err := sim.RunConcurrencyComparison(*clients, *ops, *latency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("  range-locked replicated directory: %v\n", res.RangeLocking.Round(time.Millisecond))
	fmt.Printf("  directory as one replicated file:  %v\n", res.FileLocking.Round(time.Millisecond))
	fmt.Printf("  speedup: %.1fx with %d clients\n", res.Speedup(), *clients)
	fmt.Println()
	fmt.Println("the file version is correct but serializes all writers behind one")
	fmt.Println("version number; dynamic key-range partitioning lets disjoint updates")
	fmt.Println("run concurrently (sections 2 and 5 of the paper).")
}
