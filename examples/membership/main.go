// Membership: a replicated cluster-membership registry built from the
// paper's set abstraction ("Trivial modifications of this algorithm may
// be used to implement sets or similar abstractions", section 1) — the
// classic control-plane job for a replicated directory.
//
// Nodes join and leave atomically (a rolling replacement swaps two
// members in one transaction), membership queries survive a registry
// replica failure, and the full roster is listed with a consistent
// ordered scan.
package main

import (
	"context"
	"fmt"
	"log"

	"repdir/internal/core"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A 5-replica registry: reads need 3 votes, writes need 3.
	locals := make([]*transport.Local, 5)
	dirs := make([]rep.Directory, 5)
	for i := range dirs {
		locals[i] = transport.NewLocal(rep.New(fmt.Sprintf("registry-%d", i)))
		dirs[i] = locals[i]
	}
	suite, err := core.NewSuite(quorum.NewUniform(dirs, 3, 3))
	if err != nil {
		return err
	}
	members := core.NewSet(suite)

	fmt.Println("== nodes joining ==")
	for _, node := range []string{"node-a", "node-b", "node-c", "node-d"} {
		if err := members.Add(ctx, node); err != nil {
			return fmt.Errorf("join %s: %w", node, err)
		}
		fmt.Println("joined:", node)
	}

	roster, err := suite.Scan(ctx, "", 0)
	if err != nil {
		return err
	}
	fmt.Printf("roster (%d): ", len(roster))
	for _, kv := range roster {
		fmt.Printf("%s ", kv.Key)
	}
	fmt.Println()

	fmt.Println("\n== rolling replacement: node-b out, node-e in, atomically ==")
	err = suite.RunInTxn(ctx, func(tx *core.Tx) error {
		if err := tx.Delete(ctx, "node-b"); err != nil {
			return err
		}
		return tx.Insert(ctx, "node-e", "")
	})
	if err != nil {
		return err
	}
	for _, probe := range []struct {
		node string
		want bool
	}{{"node-b", false}, {"node-e", true}} {
		in, err := members.Contains(ctx, probe.node)
		if err != nil {
			return err
		}
		fmt.Printf("member(%s) = %v\n", probe.node, in)
		if in != probe.want {
			return fmt.Errorf("membership of %s = %v, want %v", probe.node, in, probe.want)
		}
	}

	fmt.Println("\n== two registry replicas fail; membership keeps answering ==")
	locals[0].Crash()
	locals[4].Crash()
	for _, node := range []string{"node-a", "node-b", "node-e"} {
		in, err := members.Contains(ctx, node)
		if err != nil {
			return fmt.Errorf("query during outage: %w", err)
		}
		fmt.Printf("member(%s) = %v\n", node, in)
	}
	if err := members.Add(ctx, "node-f"); err != nil {
		return fmt.Errorf("join during outage: %w", err)
	}
	fmt.Println("node-f joined with two replicas down (3 of 5 votes still form quorums)")

	locals[0].Restart()
	locals[4].Restart()
	roster, err = suite.Scan(ctx, "", 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal roster (%d): ", len(roster))
	for _, kv := range roster {
		fmt.Printf("%s ", kv.Key)
	}
	fmt.Println()
	st := suite.Stats()
	fmt.Printf("suite stats: %d commits, %d retries, %d wait-die aborts, %d replica losses\n",
		st.Commits, st.Retries, st.Dies, st.ReplicaLosses)
	return nil
}
