// Operations: the runbook walkthrough. A durable 3-2-2 deployment
// (write-ahead logs + snapshot checkpoints) is driven through the
// incidents an operator actually faces:
//
//  1. a replica crashes and recovers its committed state from disk;
//  2. the recovered replica is brought fully current with a repair pass;
//  3. a client "coordinator" dies between two-phase-commit phases,
//     leaving a replica in doubt, and cooperative termination finishes
//     the transaction.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repdir/internal/core"
	"repdir/internal/keyspace"
	"repdir/internal/lock"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
	"repdir/internal/txn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// node bundles one representative's disk paths and live handles.
type node struct {
	name       string
	walPath    string
	snapPath   string
	durability *rep.Durability
	server     *transport.Server
	client     *transport.Client
}

// start (re)opens the durable representative and serves it.
func (n *node) start(addr string) error {
	r, d, err := rep.OpenDurable(n.name, n.walPath, n.snapPath)
	if err != nil {
		return err
	}
	n.durability = d
	n.server, err = transport.Serve(r, addr)
	return err
}

// crash stops the server and closes the log; volatile state is lost.
func (n *node) crash() string {
	addr := n.server.Addr()
	n.server.Close()
	n.durability.Close()
	return addr
}

func run() error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "repdir-operations-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Boot three durable representatives.
	nodes := make([]*node, 3)
	dirs := make([]rep.Directory, 3)
	for i, name := range []string{"r1", "r2", "r3"} {
		nodes[i] = &node{
			name:     name,
			walPath:  filepath.Join(dir, name+".wal"),
			snapPath: filepath.Join(dir, name+".snap"),
		}
		if err := nodes[i].start("127.0.0.1:0"); err != nil {
			return err
		}
		defer nodes[i].server.Close()
		defer nodes[i].durability.Close()
		c, err := transport.Dial(nodes[i].server.Addr())
		if err != nil {
			return err
		}
		defer c.Close()
		nodes[i].client = c
		dirs[i] = c
	}
	suite, err := core.NewSuite(quorum.NewUniform(dirs, 2, 2), core.WithParallelQuorum(true))
	if err != nil {
		return err
	}

	fmt.Println("== normal operation: writes, a checkpoint, more writes ==")
	for i := 0; i < 6; i++ {
		if err := suite.Insert(ctx, fmt.Sprintf("cfg/%02d", i), "v1"); err != nil {
			return err
		}
	}
	if err := nodes[0].durability.Checkpoint(); err != nil {
		return fmt.Errorf("checkpoint r1: %w", err)
	}
	fmt.Println("checkpointed r1 (snapshot written, log truncated)")
	for i := 6; i < 10; i++ {
		if err := suite.Insert(ctx, fmt.Sprintf("cfg/%02d", i), "v1"); err != nil {
			return err
		}
	}

	fmt.Println("\n== incident 1: r1 crashes; the suite runs on; r1 recovers from disk ==")
	addr := nodes[0].crash()
	if err := suite.Update(ctx, "cfg/03", "v2-during-outage"); err != nil {
		return fmt.Errorf("update during outage: %w", err)
	}
	if err := nodes[0].start(addr); err != nil {
		return err
	}
	fmt.Println("r1 recovered (snapshot + log replay); suite kept serving meanwhile")

	fmt.Println("\n== incident 2: repair brings r1 current again ==")
	stats, err := core.RepairReplica(ctx, suite, nodes[0].client)
	if err != nil {
		// The first call after a bounce may hit the stale connection.
		stats, err = core.RepairReplica(ctx, suite, nodes[0].client)
	}
	if err != nil {
		return fmt.Errorf("repair: %w", err)
	}
	fmt.Printf("repair: %d scanned, %d copied, %d freshened\n",
		stats.Scanned, stats.Copied, stats.Freshened)

	fmt.Println("\n== incident 3: a coordinator dies between 2PC phases ==")
	// Play a crashing coordinator by hand: prepare at r2 and r3, commit
	// only at r2, then vanish.
	const orphan = lock.TxnID(77 << 18)
	for _, i := range []int{1, 2} {
		if err := nodes[i].client.Insert(ctx, orphan, keyspace.New("cfg/orphan"), 1, "paid"); err != nil {
			return err
		}
		if err := nodes[i].client.Prepare(ctx, orphan); err != nil {
			return err
		}
	}
	if err := nodes[1].client.Commit(ctx, orphan); err != nil {
		return err
	}
	// r3 crashes and recovers: the transaction comes back IN DOUBT,
	// its key locked.
	addr = nodes[2].crash()
	if err := nodes[2].start(addr); err != nil {
		return err
	}
	st, err := nodes[2].client.Status(ctx, orphan)
	if err != nil {
		st, err = nodes[2].client.Status(ctx, orphan)
	}
	if err != nil {
		return err
	}
	fmt.Printf("r3 reports transaction %d: %s\n", orphan, st)

	resolution, err := txn.Resolve(ctx, orphan, dirs)
	if err != nil {
		return fmt.Errorf("resolve: %w", err)
	}
	outcome := "aborted"
	if resolution.Committed {
		outcome = "committed"
	}
	fmt.Printf("cooperative termination: %s (finished at %v)\n", outcome, resolution.Finished)
	if v, found, err := suite.Lookup(ctx, "cfg/orphan"); err != nil || !found || v != "paid" {
		return fmt.Errorf("orphan entry after resolution: %q %v %v", v, found, err)
	}
	fmt.Println("cfg/orphan readable everywhere — atomicity preserved across the coordinator crash")

	fmt.Println("\n== final state (reverse scan of the last 5 entries) ==")
	entries, err := suite.ScanReverse(ctx, "", 5)
	if err != nil {
		return err
	}
	for _, kv := range entries {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}
	return nil
}
