// Quickstart: build an in-process 3-2-2 replicated directory suite and
// walk through the paper's running example (Figures 1-5) — inserting,
// looking up, and deleting the entry "b" while only ever touching two of
// the three representatives, and watching gap version numbers resolve the
// deletion ambiguity.
package main

import (
	"context"
	"fmt"
	"log"

	"repdir/internal/core"
	"repdir/internal/keyspace"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
)

func main() {
	ctx := context.Background()

	// Three directory representatives, one vote each, read and write
	// quorums of two: the paper's 3-2-2 configuration.
	names := []string{"A", "B", "C"}
	reps := make([]*rep.Rep, len(names))
	dirs := make([]rep.Directory, len(names))
	for i, n := range names {
		reps[i] = rep.New(n)
		dirs[i] = transport.NewLocal(reps[i])
	}
	suite, err := core.NewSuite(quorum.NewUniform(dirs, 2, 2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== a 3-2-2 replicated directory ==")
	mustDo("insert a", suite.Insert(ctx, "a", "alpha"))
	mustDo("insert c", suite.Insert(ctx, "c", "gamma"))
	mustDo("insert b", suite.Insert(ctx, "b", "beta"))
	dump(reps)

	value, found, err := suite.Lookup(ctx, "b")
	mustDo("lookup b", err)
	fmt.Printf("lookup b -> found=%v value=%q\n", found, value)
	fmt.Println("   (each read quorum holds at most 2 of 3 replicas, yet the")
	fmt.Println("    highest version number always identifies the current answer)")

	fmt.Println("\n== delete b: the range between its neighbors is coalesced ==")
	mustDo("delete b", suite.Delete(ctx, "b"))
	dump(reps)
	if _, found, _ := suite.Lookup(ctx, "b"); found {
		log.Fatal("b should be gone")
	}
	fmt.Println("lookup b -> not present (gap version outranks any stale copy)")

	fmt.Println("\n== a ghost cannot resurrect the entry ==")
	// Whichever replica missed the delete may still store "b" — that
	// stale copy is a ghost. Every read quorum intersects the delete's
	// write quorum, so the coalesced gap's higher version always wins.
	for i, r := range reps {
		for _, e := range r.Dump() {
			if e.Key.Equal(keyspace.New("b")) {
				fmt.Printf("replica %s still stores ghost b at version %d — harmless\n",
					names[i], e.Version)
			}
		}
	}
	for trial := 0; trial < 8; trial++ {
		if _, found, _ := suite.Lookup(ctx, "b"); found {
			log.Fatal("ghost won a lookup; version dominance violated")
		}
	}
	fmt.Println("8/8 lookups agree: b is deleted")

	fmt.Println("\n== reinsertion gets a higher version ==")
	mustDo("reinsert b", suite.Insert(ctx, "b", "beta-2"))
	value, _, _ = suite.Lookup(ctx, "b")
	fmt.Printf("lookup b -> %q\n", value)
	dump(reps)
}

// dump prints each replica's entries with entry and gap versions.
func dump(reps []*rep.Rep) {
	for _, r := range reps {
		fmt.Printf("  %s:", r.Name())
		for _, e := range r.Dump() {
			fmt.Printf("  %s v%d (gap v%d)", e.Key, e.Version, e.GapAfter)
		}
		fmt.Println()
	}
}

func mustDo(what string, err error) {
	if err != nil {
		log.Fatalf("%s: %v", what, err)
	}
}
