package repdir

import (
	"bytes"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// lockedBuffer is a goroutine-safe output sink for the example processes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestExamplesRun builds and runs every example program end to end, so
// the documented walkthroughs can never rot. Each example is expected to
// exit zero within the timeout.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/nameservice",
		"./examples/locality",
		"./examples/concurrency",
		"./examples/membership",
		"./examples/operations",
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			args := []string{"run", ex}
			if ex == "./examples/concurrency" {
				// Keep the timing demo quick in CI.
				args = append(args, "-clients", "4", "-ops", "5", "-latency", "100us")
			}
			cmd := exec.Command("go", args...)
			cmd.Dir = "."
			done := make(chan error, 1)
			out := &lockedBuffer{}
			cmd.Stdout = out
			cmd.Stderr = out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("%s failed: %v\n%s", ex, err, out.String())
				}
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("%s timed out\n%s", ex, out.String())
			}
		})
	}
}
