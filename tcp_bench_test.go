package repdir

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repdir/internal/core"
	"repdir/internal/quorum"
	"repdir/internal/rep"
	"repdir/internal/transport"
)

// newBenchTCPSuite builds a full networked 3-2-2 deployment: three
// volatile representative servers and one suite client connected over
// TCP with parallel quorum fan-out (the configuration the multiplexed
// transport exists to serve).
func newBenchTCPSuite(b *testing.B) *core.Suite {
	b.Helper()
	dirs := make([]rep.Directory, 3)
	for i := range dirs {
		srv, err := transport.Serve(rep.New(fmt.Sprintf("m%d", i)), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		c, err := transport.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		dirs[i] = c
	}
	suite, err := core.NewSuite(quorum.NewUniform(dirs, 2, 2), core.WithParallelQuorum(true))
	if err != nil {
		b.Fatal(err)
	}
	return suite
}

// benchSuiteTCP runs fn for every iteration across the given number of
// concurrent workers, all sharing one suite (and therefore the same
// three TCP connections).
func benchSuiteTCP(b *testing.B, workers int, fn func(n int64) error) {
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				if err := fn(n); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkSuiteTCPLookup measures full directory lookups (read quorum
// of 2 over TCP, one transaction each) through one suite client.
func BenchmarkSuiteTCPLookup(b *testing.B) {
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			suite := newBenchTCPSuite(b)
			if err := suite.Insert(ctx, "bench-key", "v"); err != nil {
				b.Fatal(err)
			}
			benchSuiteTCP(b, workers, func(int64) error {
				_, _, err := suite.Lookup(ctx, "bench-key")
				return err
			})
		})
	}
}

// BenchmarkSuiteTCPInsert measures full directory inserts (read quorum
// lookup + write quorum insert + two-phase commit over TCP) through one
// suite client. Keys spread across pre-seeded gaps so concurrent inserts
// rarely fight over the same gap lock.
func BenchmarkSuiteTCPInsert(b *testing.B) {
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			suite := newBenchTCPSuite(b)
			const gaps = 256
			for i := 0; i < gaps; i++ {
				if err := suite.Insert(ctx, fmt.Sprintf("seed-%03d", i), "v"); err != nil {
					b.Fatal(err)
				}
			}
			benchSuiteTCP(b, workers, func(n int64) error {
				key := fmt.Sprintf("seed-%03d+%09d", n%gaps, n)
				return suite.Insert(ctx, key, "v")
			})
		})
	}
}
